package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func small() *Cache {
	// 4 lines of 32 B, direct-mapped: sets index with bits [6:5].
	return New(Config{SizeBytes: 128, LineBytes: 32, Assoc: 1})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 100, LineBytes: 32, Assoc: 1},
		{SizeBytes: 128, LineBytes: 30, Assoc: 1},
		{SizeBytes: 128, LineBytes: 32, Assoc: 0},
		{SizeBytes: 128, LineBytes: 32, Assoc: 3},
		{SizeBytes: 16, LineBytes: 32, Assoc: 1},
		{SizeBytes: 8192, LineBytes: 32, Assoc: 96},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v unexpectedly valid", cfg)
		}
	}
	good := []Config{
		{SizeBytes: 8192, LineBytes: 32, Assoc: 1},
		{SizeBytes: 1 << 20, LineBytes: 32, Assoc: 4},
		{SizeBytes: 128, LineBytes: 32, Assoc: 4}, // fully associative
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %+v invalid: %v", cfg, err)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 32, Assoc: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Read(0x40) {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x40)
	if !c.Read(0x40) {
		t.Fatal("read after fill should hit")
	}
	if !c.Read(0x5F) { // same 32B line as 0x40
		t.Fatal("read of same line should hit")
	}
	if c.Read(0x60) {
		t.Fatal("adjacent line should miss")
	}
}

func TestProbeDoesNotCount(t *testing.T) {
	c := small()
	c.Fill(0)
	c.Probe(0)
	c.Probe(32)
	if s := c.Stats(); s.ReadAccesses != 0 {
		t.Errorf("Probe counted as access: %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := small()
	// 0x00 and 0x80 collide in a 4-line direct-mapped cache (index bits 6:5).
	c.Fill(0x00)
	ev, has := c.Fill(0x80)
	if !has || ev.Addr != 0x00 {
		t.Fatalf("expected eviction of 0x00, got %+v has=%v", ev, has)
	}
	if c.Probe(0x00) {
		t.Fatal("0x00 should have been evicted")
	}
	if !c.Probe(0x80) {
		t.Fatal("0x80 should be resident")
	}
}

func TestFillIdempotent(t *testing.T) {
	c := small()
	c.Fill(0x20)
	if _, has := c.Fill(0x20); has {
		t.Fatal("refilling a resident line must not evict")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way cache with 2 sets: lines 0x00, 0x40, 0x80, 0xC0 map set 0/1/0/1.
	c := New(Config{SizeBytes: 128, LineBytes: 32, Assoc: 2})
	c.Fill(0x00)
	c.Fill(0x80) // set 0 now has 0x00 (older) and 0x80
	c.Read(0x00) // touch 0x00, making 0x80 the LRU way
	ev, has := c.Fill(0x100)
	if !has || ev.Addr != 0x80 {
		t.Fatalf("expected LRU eviction of 0x80, got %+v has=%v", ev, has)
	}
	if !c.Probe(0x00) || !c.Probe(0x100) {
		t.Fatal("0x00 and 0x100 should be resident")
	}
}

func TestWriteHitSemantics(t *testing.T) {
	c := small()
	if c.WriteHit(0x20) {
		t.Fatal("write to empty cache should miss (write-around)")
	}
	if c.Probe(0x20) {
		t.Fatal("write-around must not allocate")
	}
	c.Fill(0x20)
	if !c.WriteHit(0x20) {
		t.Fatal("write to resident line should hit")
	}
	s := c.Stats()
	if s.WriteAccesses != 2 || s.WriteHits != 1 {
		t.Errorf("write stats = %+v, want 2 accesses / 1 hit", s)
	}
}

func TestWriteAllocate(t *testing.T) {
	c := small()
	hit, _, has := c.WriteAllocate(0x40)
	if hit || has {
		t.Fatalf("first write-allocate: hit=%v evicted=%v, want miss and no eviction", hit, has)
	}
	if !c.Probe(0x40) {
		t.Fatal("write-allocate must allocate")
	}
	hit, _, _ = c.WriteAllocate(0x40)
	if !hit {
		t.Fatal("second write should hit")
	}
	// Conflict eviction of the now-dirty line.
	_, ev, has := c.WriteAllocate(0xC0)
	if !has || ev.Addr != 0x40 || !ev.Dirty {
		t.Fatalf("expected dirty eviction of 0x40, got %+v has=%v", ev, has)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Errorf("dirty evictions = %d, want 1", c.Stats().DirtyEvictions)
	}
}

func TestReadFillNotDirty(t *testing.T) {
	c := small()
	c.Fill(0x00)
	ev, has := c.Fill(0x80)
	if !has || ev.Dirty {
		t.Fatalf("read-filled line evicted dirty: %+v has=%v", ev, has)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0x60)
	removed, dirty := c.Invalidate(0x60)
	if !removed || dirty {
		t.Fatalf("Invalidate = %v, %v; want removed clean", removed, dirty)
	}
	if c.Probe(0x60) {
		t.Fatal("line still resident after invalidate")
	}
	if removed, _ := c.Invalidate(0x60); removed {
		t.Fatal("second invalidate should be a no-op")
	}
	// Dirty invalidation.
	c.WriteAllocate(0x60)
	if _, dirty := c.Invalidate(0x60); !dirty {
		t.Fatal("invalidate of written line should report dirty")
	}
}

func TestStatsAndRates(t *testing.T) {
	c := small()
	c.Read(0) // miss
	c.Fill(0)
	c.Read(0) // hit
	c.Read(8) // hit (same line)
	s := c.Stats()
	if s.ReadAccesses != 3 || s.ReadHits != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.ReadHitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("ReadHitRate = %v, want 2/3", got)
	}
	c.ResetStats()
	if c.Stats().ReadAccesses != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if !c.Probe(0) {
		t.Error("ResetStats must not clear contents")
	}
	var empty Stats
	if empty.ReadHitRate() != 1 || empty.WriteHitRate() != 1 {
		t.Error("empty stats should report perfect hit rates")
	}
}

// Property: occupancy never exceeds capacity and never goes negative, and a
// filled address always probes resident immediately afterwards.
func TestOccupancyBoundProperty(t *testing.T) {
	cfg := Config{SizeBytes: 256, LineBytes: 32, Assoc: 2}
	capacity := cfg.SizeBytes / cfg.LineBytes
	f := func(addrs []uint16) bool {
		c := New(cfg)
		for _, a := range addrs {
			addr := mem.Addr(a)
			if !c.Read(addr) {
				c.Fill(addr)
			}
			if !c.Probe(addr) {
				return false
			}
			if occ := c.Occupancy(); occ < 0 || occ > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == accesses is maintained implicitly; check the
// read counters never over-count hits.
func TestHitCountProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := small()
		for _, a := range addrs {
			if !c.Read(mem.Addr(a)) {
				c.Fill(mem.Addr(a))
			}
		}
		s := c.Stats()
		return s.ReadHits <= s.ReadAccesses && s.ReadAccesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after any access sequence, invalidating everything yields
// occupancy zero (the tag store is self-consistent).
func TestInvalidateAllProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(Config{SizeBytes: 512, LineBytes: 32, Assoc: 4})
		for _, a := range addrs {
			c.WriteAllocate(mem.Addr(a))
		}
		for _, a := range addrs {
			c.Invalidate(mem.Addr(a))
		}
		return c.Occupancy() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
