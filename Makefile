# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet bench bench-sim bench-sim-smoke bench-explore smoke-explore smoke-ftl smoke-banked chaos serve-smoke scrub-smoke

all: vet build test

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the repository's benchmark smoke set: the simulator hot path,
# one figure regeneration, and the explore-subsystem micro-benchmark below.
bench: bench-explore
	$(GO) test -bench BenchmarkStep -benchtime 100000x -run '^$$' ./internal/sim/
	$(GO) test -bench 'BenchmarkSimulatorThroughput|BenchmarkFig5' -benchtime 1x -run '^$$' .

# bench-sim measures raw simulator throughput (fused and legacy paths)
# over the 17-benchmark suite and writes BENCH_sim.json — the committed
# reference point for the hot path's aggregate MIPS.  Regenerate it on the
# machine you care about; docs/PERFORMANCE.md explains the fields and the
# measurement protocol (2e6 instructions per bench keeps per-bench wall
# time comfortably above timer and scheduler noise).
bench-sim:
	$(GO) run ./cmd/wbbench -n 2000000 -repeat 3 -out BENCH_sim.json
	@cat BENCH_sim.json

# bench-sim-smoke is the CI gate: a shortened fused-only run that must
# parse the committed BENCH_sim.json and land within 20% of its aggregate
# MIPS.  It catches structural regressions (de-batched hot path, per-step
# allocations), not single-digit drift.
bench-sim-smoke:
	$(GO) run ./cmd/wbbench -n 500000 -mode fused -quiet -repeat 5 \
		-baseline BENCH_sim.json -max-regress 0.20 > /dev/null

# bench-explore runs a small guided wbopt search and records its throughput
# (jobs/sec) and pruning counters in BENCH_explore.json.  The committed file
# is the reference point; regenerate it on the machine you care about.
bench-explore:
	$(GO) run ./cmd/wbopt -space spaces/smoke.json -n 200000 -seed 1 -quiet \
		-stats-out BENCH_explore.json
	@cat BENCH_explore.json

# chaos runs the deterministic fault-injection suite under the race
# detector: every faultline scenario (crash, hang, slow, corrupt, bitflip,
# 5xx storm, partition) must still yield byte-identical sweep results.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/faultline/ ./internal/explore/

# smoke-explore is the CI acceptance smoke: a guided search over the 2-axis
# smoke space must exit 0 and put a read-from-WB machine on its frontier.
smoke-explore:
	$(GO) run ./cmd/wbopt -space spaces/smoke.json -n 100000 -seed 1 -quiet \
		-out /tmp/wbopt-smoke.json
	grep -q 'read-from-WB' /tmp/wbopt-smoke.json
	grep -q '"frontier": \[' /tmp/wbopt-smoke.json

# smoke-ftl is the organization-sweep acceptance smoke: an exhaustive
# wbopt grid over the ftl smoke space must exit 0 and evaluate ftl
# machines, and — the byte-reproducibility contract extended to
# organizations — a second same-seed run must produce an identical
# artifact.
smoke-ftl:
	$(GO) run ./cmd/wbopt -space spaces/ftl-smoke.json -strategy grid \
		-n 100000 -seed 1 -quiet -out /tmp/wbopt-ftl-a.json
	$(GO) run ./cmd/wbopt -space spaces/ftl-smoke.json -strategy grid \
		-n 100000 -seed 1 -quiet -out /tmp/wbopt-ftl-b.json
	cmp /tmp/wbopt-ftl-a.json /tmp/wbopt-ftl-b.json
	grep -q 'org=ftl' /tmp/wbopt-ftl-a.json
	grep -q '"frontier": \[' /tmp/wbopt-ftl-a.json

# smoke-banked is the backend-sweep acceptance smoke: the tiny
# banked+fence grid (spaces/banked-smoke.json) run locally, through a
# wbserve worker with a checkpoint resume, and as a pure journal replay
# must render byte-identical frontier artifacts — the reproducibility
# recipe behind results/banked_frontier.json.
smoke-banked:
	bash scripts/banked_smoke.sh

# serve-smoke is the platform durability gate: a real wbserve process with
# a durable store+queue is SIGKILLed mid-sweep and restarted; the sweep
# must complete from the journal, byte-identical to an unkilled run.  See
# docs/SERVING.md for the recovery semantics this exercises.
serve-smoke:
	bash scripts/serve_smoke.sh

# scrub-smoke is the self-healing gate: one wbserve with a two-replica
# store, bearer-token auth, and -supervise takes a bit-flip on a stored
# entry and a SIGKILLed worker mid-sweep, and must finish byte-identical
# to a fault-free baseline with the corruption quarantined and repaired.
# See the disk-fault runbook in docs/SERVING.md.
scrub-smoke:
	bash scripts/scrub_smoke.sh
