// Package repro is a from-scratch Go reproduction of Skadron & Clark,
// "Design Issues and Tradeoffs for Write Buffers" (HPCA 1997).
//
// The repository contains an instruction-level timing simulator for the
// paper's machine model (internal/sim), the coalescing write buffer that is
// the paper's subject (internal/core), set-associative cache models
// (internal/cache), a 17-benchmark SPEC92-like workload suite
// (internal/workload), and an experiment harness that regenerates every
// table and figure of the paper's evaluation (internal/experiment).
//
// Entry points:
//
//	cmd/wbexp    — regenerate any table or figure (wbexp -exp fig5)
//	cmd/wbsim    — run one benchmark on one configuration
//	cmd/wbtrace  — inspect benchmark reference streams
//	examples/    — runnable demos of the library API
//
// bench_test.go in this directory holds one testing.B benchmark per paper
// item, so `go test -bench=.` sweeps the whole evaluation.
//
// See DESIGN.md for the system inventory and the per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
