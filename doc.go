// Package repro is a from-scratch Go reproduction of Skadron & Clark,
// "Design Issues and Tradeoffs for Write Buffers" (HPCA 1997).
//
// The repository contains an instruction-level timing simulator for the
// paper's machine model (internal/sim), the coalescing write buffer that is
// the paper's subject (internal/core), set-associative cache models
// (internal/cache), a 17-benchmark SPEC92-like workload suite
// (internal/workload), and an experiment harness that regenerates every
// table and figure of the paper's evaluation (internal/experiment).
//
// An observability layer spans those packages: internal/metrics is a
// lightweight registry of atomic counters, gauges, and log2-bucketed
// histograms with snapshot-and-diff semantics and Prometheus text export;
// sim.Machine.PublishMetrics folds a finished run's stall, occupancy, and
// retirement-latency statistics into such a registry; and
// experiment.Options carries the Progress callback (live sweep reporting
// via experiment.ProgressReporter) and the Metrics registry that
// RunMatrixOpts feeds per-job throughput into.
//
// On top of the harness sits a design-space search subsystem
// (internal/explore): a Space enumerates legal machines, strategies spend a
// cycle-exact simulation budget (exhaustively, randomly, or guided by the
// analytic Markov model in internal/analytic), and results reduce to Pareto
// frontiers over CPI overhead versus buffer area.  See docs/EXPLORATION.md.
//
// Entry points:
//
//	cmd/wbexp     — regenerate any table or figure, with live progress (wbexp -exp fig5)
//	cmd/wbsim     — run one benchmark on one configuration
//	cmd/wbtrace   — inspect or record benchmark reference streams
//	cmd/wbcompare — A/B two configurations across the suite
//	cmd/wbmodel   — query the analytic buffer model
//	cmd/wbserve   — serve simulations over HTTP (JSON API, /metrics, pprof)
//	cmd/wbopt     — search the design space for Pareto-optimal buffers
//	examples/     — runnable demos of the library API
//
// bench_test.go in this directory holds one testing.B benchmark per paper
// item, so `go test -bench=.` sweeps the whole evaluation.
//
// See docs/ARCHITECTURE.md for the package map and data flow, DESIGN.md
// for the system inventory and the per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
