// Command wbsim runs one benchmark on one write-buffer configuration and
// prints the full measurement: cycle counts, the three stall categories,
// and the hit rates — the single-run view of the paper's methodology.
//
// Usage:
//
//	wbsim -bench li                                # baseline (Table 2)
//	wbsim -bench fft -depth 12 -retire 8 -hazard read-from-WB
//	wbsim -bench su2cor -l2size 524288 -memlat 50 -n 2000000
//	wbsim -trace li.wbt                            # run a recorded trace (wbtrace -record)
//	wbsim -list
//
// The machine can also travel as a spec.  -dump-config prints the
// flag-built machine in machconf's canonical JSON; -config accepts a
// compact machconf spec — key=value pairs (see machconf.ParseSpec for the
// vocabulary, including the drain-side backend keys backend=, banks=,
// rowhit=, rowmiss=, fencecost=, releasecost=), an @file.json blob with
// optional overrides, or a bare path to such a file (the same form
// wbserve's /run accepts and wbexp -config sweeps):
//
//	wbsim -depth 12 -hazard read-from-WB -dump-config > deep.json
//	wbsim -bench li -config deep.json
//	wbsim -bench burstw -config depth=8,banks=8,rowhit=6,rowmiss=18
//	wbsim -bench fenceprod -config @deep.json,fencecost=20,releasecost=4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/machconf"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "", "benchmark name (see -list)")
		traceFile  = flag.String("trace", "", "run a recorded trace file instead of a benchmark")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		n          = flag.Uint64("n", 1_000_000, "dynamic instructions to simulate")
		depth      = flag.Int("depth", 4, "write buffer depth (entries)")
		width      = flag.Int("width", 4, "write buffer entry width (words); 1 = non-coalescing")
		retire     = flag.Int("retire", 2, "retire-at high-water mark")
		aging      = flag.Uint64("aging", 0, "aging timeout in cycles (0 = off)")
		hazard     = flag.String("hazard", "flush-full", "load-hazard policy: flush-full, flush-partial, flush-item-only, read-from-WB")
		l1size     = flag.Int("l1size", 8192, "L1 data cache size in bytes")
		l2lat      = flag.Uint64("l2lat", 6, "L2 access latency in cycles")
		l2size     = flag.Int("l2size", 0, "finite L2 size in bytes (0 = perfect)")
		memlat     = flag.Uint64("memlat", 25, "main memory latency in cycles")
		configFile = flag.String("config", "", "machine spec: machconf key=value string, @file.json, or a bare JSON path (replaces the machine flags)")
		dumpConfig = flag.Bool("dump-config", false, "print the machine's canonical machconf JSON and exit")
	)
	flag.Parse()

	if *list {
		all := append(workload.All(), workload.Transformed()...)
		all = append(all, workload.Scenarios()...)
		for _, b := range all {
			fmt.Printf("%-12s %-10s loads %.1f%%  stores %.1f%% (paper Table 4)\n",
				b.Name, b.Group, b.Target.PctLoads, b.Target.PctStores)
		}
		return
	}

	var cfg sim.Config
	if *configFile != "" {
		if set := machineFlagsSet(); len(set) > 0 {
			fmt.Fprintf(os.Stderr, "wbsim: -config replaces the machine flags; drop %s\n", set)
			os.Exit(1)
		}
		var err error
		cfg, err = machconf.ParseSpec(specArg(*configFile))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbsim:", err)
			os.Exit(1)
		}
	} else {
		cfg = sim.Baseline().
			WithDepth(*depth).
			WithRetire(core.RetireAt{N: *retire, Timeout: *aging}).
			WithL1Size(*l1size).
			WithL2Latency(*l2lat).
			WithMemLat(*memlat)
		cfg.WB.WordsPerEntry = *width
		if *l2size > 0 {
			cfg = cfg.WithL2(*l2size)
		}
		h, err := parseHazard(*hazard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbsim:", err)
			os.Exit(1)
		}
		cfg = cfg.WithHazard(h)
	}

	if *dumpConfig {
		blob, err := machconf.Encode(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbsim:", err)
			os.Exit(1)
		}
		fmt.Println(string(blob))
		return
	}

	var stream trace.Stream
	var name string
	if *traceFile != "" {
		fh, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbsim:", err)
			os.Exit(1)
		}
		defer fh.Close()
		r, err := trace.NewReader(fh)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbsim:", err)
			os.Exit(1)
		}
		stream, name = r, *traceFile
	} else {
		b, ok := workload.ByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "wbsim: unknown benchmark %q (try -list)\n", *benchName)
			os.Exit(1)
		}
		stream, name = b.Stream(*n), b.Name
	}

	m, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbsim:", err)
		os.Exit(1)
	}
	m.Run(stream)
	printResult(name, m)
}

// specArg maps a bare file path to ParseSpec's @file form; key=value
// specs and explicit @file specs pass through unchanged, so the old
// `-config machine.json` invocation keeps working.
func specArg(s string) string {
	if strings.Contains(s, "=") || strings.HasPrefix(s, "@") {
		return s
	}
	return "@" + s
}

// machineFlagsSet lists the machine-shaping flags the user set explicitly,
// which conflict with -config.
func machineFlagsSet() []string {
	machine := map[string]bool{
		"depth": true, "width": true, "retire": true, "aging": true,
		"hazard": true, "l1size": true, "l2lat": true, "l2size": true, "memlat": true,
	}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if machine[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	return set
}

func parseHazard(s string) (core.HazardPolicy, error) {
	if h, ok := machconf.HazardByName(s); ok {
		return h, nil
	}
	return 0, fmt.Errorf("unknown hazard policy %q", s)
}

func printResult(name string, m *sim.Machine) {
	c := m.Counters()
	fmt.Printf("benchmark        %s\n", name)
	fmt.Printf("instructions     %d\n", c.Instructions)
	fmt.Printf("cycles           %d (CPI %.3f)\n", c.Cycles, c.CPI())
	fmt.Printf("loads            %d (L1 hit %.2f%%)\n", c.Loads, 100*c.L1LoadHitRate())
	fmt.Printf("stores           %d (WB hit %.2f%%)\n", c.Stores, 100*m.WBStoreHitRate())
	fmt.Printf("retirements      %d   flushed entries %d   hazards %d   WB read hits %d\n",
		c.Retirements, c.FlushedEntries, c.HazardEvents, c.WBReadHits)
	fmt.Println()
	fmt.Println("write-buffer-induced stalls (cycles, % of run time):")
	kinds := []stats.StallKind{
		stats.L2ReadAccess, stats.BufferFull, stats.LoadHazard,
		stats.L2IFetch, stats.MembarDrain, stats.ReleaseDrain,
	}
	for _, k := range kinds {
		if (k == stats.L2IFetch || k == stats.MembarDrain || k == stats.ReleaseDrain) && c.Stalls[k] == 0 {
			continue
		}
		fmt.Printf("  %-16s %10d  %6.2f%%\n", k, c.Stalls[k], c.StallPct(k))
	}
	fmt.Printf("  %-16s %10d  %6.2f%%\n", "total", c.WBStallCycles(), c.TotalStallPct())
	fmt.Printf("\nL1 miss service  %10d cycles (charged to the misses themselves)\n", c.MissCycles)
}
