// Command wbmodel queries the analytic write-buffer model: given a store
// allocation rate and the machine's latencies, it prints the predicted
// blocking probability and occupancy distribution, or answers the design
// question directly ("how deep must the buffer be?").
//
// Usage:
//
//	wbmodel -alloc 0.08                        # baseline geometry
//	wbmodel -alloc 0.10 -depth 12 -retire 10   # a lazy configuration
//	wbmodel -alloc 0.08 -target 0.001 -headroom 6   # minimum-depth query
//
// The allocation rate is the fraction of cycles carrying a store that
// cannot merge: storeFraction × (1 − writeBufferHitRate).  For the paper's
// benchmarks that is typically 0.03–0.12 (Tables 4 and 5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analytic"
)

func main() {
	var (
		alloc    = flag.Float64("alloc", 0.08, "allocating stores per cycle")
		lat      = flag.Int("lat", 6, "L2 write latency in cycles")
		depth    = flag.Int("depth", 4, "buffer depth")
		retire   = flag.Int("retire", 2, "retire-at high-water mark")
		target   = flag.Float64("target", 0, "if > 0, find the minimum depth with P(block) <= target")
		headroom = flag.Int("headroom", 6, "headroom to hold fixed for the minimum-depth query")
	)
	flag.Parse()

	if *target > 0 {
		d, ok := analytic.MinDepthFor(*target, *alloc, *lat, *headroom, 32)
		if !ok {
			fmt.Printf("no depth up to 32 reaches P(block) <= %v at headroom %d;\n", *target, *headroom)
			fmt.Println("with occupancy-based retirement, headroom — not depth — bounds blocking.")
			os.Exit(1)
		}
		fmt.Printf("minimum depth: %d (retire-at-%d, headroom %d)\n", d, d-*headroom, *headroom)
		return
	}

	pred, err := analytic.Solve(analytic.Params{
		AllocRate: *alloc, ServiceLat: *lat, Depth: *depth, HighWater: *retire,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbmodel:", err)
		os.Exit(1)
	}
	fmt.Printf("buffer: %d-deep, retire-at-%d, %d-cycle writes, %.3f allocs/cycle\n\n",
		*depth, *retire, *lat, *alloc)
	fmt.Printf("P(store blocks)   %.5f\n", pred.PBlocked)
	fmt.Printf("mean occupancy    %.3f entries\n", pred.MeanOccupancy)
	fmt.Printf("port utilisation  %.3f\n\n", pred.Utilization)
	fmt.Println("occupancy distribution (store's view):")
	for k, p := range pred.Occupancy {
		bar := strings.Repeat("#", int(p*60+0.5))
		fmt.Printf("  %2d %7.4f %s\n", k, p, bar)
	}
}
