// Command wbcompare races two write-buffer configurations across the whole
// benchmark suite and prints per-benchmark deltas — the quickest way to
// answer "does this design change help?".
//
// Usage:
//
//	wbcompare -a depth=4 -b depth=12,retire=8,hazard=read-from-WB
//	wbcompare -a depth=8 -b wcache=8 -n 500000
//	wbcompare -a @deep.json -b @deep.json,hazard=flush-full
//
// A configuration is a machconf spec string — the same syntax wbsim, wbexp,
// and wbopt speak: a comma-separated list of key=value pairs over the
// baseline machine (depth, width, retire, aging, hazard, wcache, l1, l2lat,
// l2, memlat, threshold, issue), or @file.json to start from a canonical
// machconf file (wbsim -dump-config writes one), optionally followed by
// more key=value overrides.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/machconf"
	"repro/internal/workload"
)

func main() {
	var (
		aSpec = flag.String("a", "depth=4", "first configuration")
		bSpec = flag.String("b", "depth=12,retire=8,hazard=read-from-WB", "second configuration")
		n     = flag.Uint64("n", 300_000, "instructions per run")
	)
	flag.Parse()

	cfgA, err := machconf.ParseSpec(*aSpec)
	if err != nil {
		fatalf("-a: %v", err)
	}
	cfgB, err := machconf.ParseSpec(*bSpec)
	if err != nil {
		fatalf("-b: %v", err)
	}

	fmt.Printf("A: %s\nB: %s\n\n", *aSpec, *bSpec)
	fmt.Printf("%-12s %10s %10s %10s\n", "benchmark", "A stall%", "B stall%", "Δ (B−A)")
	var sumA, sumB float64
	for _, b := range workload.All() {
		ma := experiment.Run(b, "a", cfgA, *n)
		mb := experiment.Run(b, "b", cfgB, *n)
		ta, tb := ma.C.TotalStallPct(), mb.C.TotalStallPct()
		sumA += ta
		sumB += tb
		marker := ""
		switch {
		case tb < ta-0.05:
			marker = "  B wins"
		case ta < tb-0.05:
			marker = "  A wins"
		}
		fmt.Printf("%-12s %10.2f %10.2f %+10.2f%s\n", b.Name, ta, tb, tb-ta, marker)
	}
	k := float64(len(workload.All()))
	fmt.Printf("%-12s %10.2f %10.2f %+10.2f\n", "mean", sumA/k, sumB/k, (sumB-sumA)/k)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wbcompare: "+format+"\n", args...)
	os.Exit(1)
}
