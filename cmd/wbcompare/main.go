// Command wbcompare races two write-buffer configurations across the whole
// benchmark suite and prints per-benchmark deltas — the quickest way to
// answer "does this design change help?".
//
// Usage:
//
//	wbcompare -a depth=4 -b depth=12,retire=8,hazard=read-from-WB
//	wbcompare -a depth=8 -b wcache=8 -n 500000
//
// A configuration string is a comma-separated list of key=value pairs:
//
//	depth=N        write buffer depth
//	retire=N       retire-at-N high-water mark
//	aging=N        aging timeout in cycles
//	hazard=P       flush-full | flush-partial | flush-item-only | read-from-WB
//	wcache=N       use an N-entry write cache instead of a buffer
//	l1=BYTES       L1 size
//	l2lat=N        L2 latency
//	l2=BYTES       finite L2 size
//	memlat=N       memory latency
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		aSpec = flag.String("a", "depth=4", "first configuration")
		bSpec = flag.String("b", "depth=12,retire=8,hazard=read-from-WB", "second configuration")
		n     = flag.Uint64("n", 300_000, "instructions per run")
	)
	flag.Parse()

	cfgA, err := parseConfig(*aSpec)
	if err != nil {
		fatalf("-a: %v", err)
	}
	cfgB, err := parseConfig(*bSpec)
	if err != nil {
		fatalf("-b: %v", err)
	}

	fmt.Printf("A: %s\nB: %s\n\n", *aSpec, *bSpec)
	fmt.Printf("%-12s %10s %10s %10s\n", "benchmark", "A stall%", "B stall%", "Δ (B−A)")
	var sumA, sumB float64
	for _, b := range workload.All() {
		ma := experiment.Run(b, "a", cfgA, *n)
		mb := experiment.Run(b, "b", cfgB, *n)
		ta, tb := ma.C.TotalStallPct(), mb.C.TotalStallPct()
		sumA += ta
		sumB += tb
		marker := ""
		switch {
		case tb < ta-0.05:
			marker = "  B wins"
		case ta < tb-0.05:
			marker = "  A wins"
		}
		fmt.Printf("%-12s %10.2f %10.2f %+10.2f%s\n", b.Name, ta, tb, tb-ta, marker)
	}
	k := float64(len(workload.All()))
	fmt.Printf("%-12s %10.2f %10.2f %+10.2f\n", "mean", sumA/k, sumB/k, (sumB-sumA)/k)
}

func parseConfig(spec string) (sim.Config, error) {
	cfg := sim.Baseline()
	if spec == "" {
		return cfg, nil
	}
	retire := core.RetireAt{N: 2}
	for _, kv := range strings.Split(spec, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return cfg, fmt.Errorf("malformed %q (want key=value)", kv)
		}
		switch key {
		case "hazard":
			parsed := false
			for _, h := range core.HazardPolicies {
				if h.String() == val {
					cfg = cfg.WithHazard(h)
					parsed = true
				}
			}
			if !parsed {
				return cfg, fmt.Errorf("unknown hazard policy %q", val)
			}
			continue
		}
		num, err := strconv.Atoi(val)
		if err != nil {
			return cfg, fmt.Errorf("%s: %v", key, err)
		}
		switch key {
		case "depth":
			cfg = cfg.WithDepth(num)
		case "retire":
			retire.N = num
		case "aging":
			retire.Timeout = uint64(num)
		case "wcache":
			cfg = cfg.WithWriteCache(num)
		case "l1":
			cfg = cfg.WithL1Size(num)
		case "l2lat":
			cfg = cfg.WithL2Latency(uint64(num))
		case "l2":
			cfg = cfg.WithL2(num)
		case "memlat":
			cfg = cfg.WithMemLat(uint64(num))
		default:
			return cfg, fmt.Errorf("unknown key %q", key)
		}
	}
	cfg = cfg.WithRetire(retire)
	return cfg, cfg.Validate()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wbcompare: "+format+"\n", args...)
	os.Exit(1)
}
