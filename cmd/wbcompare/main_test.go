package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := parseConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WB.Depth != 4 {
		t.Errorf("default depth = %d, want 4", cfg.WB.Depth)
	}
}

func TestParseConfigFull(t *testing.T) {
	cfg, err := parseConfig("depth=12,retire=8,hazard=read-from-WB,l2=1048576,memlat=50,l2lat=10,l1=16384,aging=64")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WB.Depth != 12 {
		t.Errorf("depth = %d", cfg.WB.Depth)
	}
	if cfg.Hazard != core.ReadFromWB {
		t.Errorf("hazard = %v", cfg.Hazard)
	}
	if cfg.L2 == nil || cfg.L2.SizeBytes != 1<<20 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.MemLat != 50 || cfg.L2ReadLat != 10 || cfg.L1.SizeBytes != 16384 {
		t.Errorf("latencies/sizes wrong: %+v", cfg)
	}
	r, ok := cfg.Retire.(core.RetireAt)
	if !ok || r.N != 8 || r.Timeout != 64 {
		t.Errorf("retire = %#v", cfg.Retire)
	}
}

func TestParseConfigWriteCache(t *testing.T) {
	cfg, err := parseConfig("wcache=8")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WriteCacheDepth != 8 {
		t.Errorf("write-cache depth = %d", cfg.WriteCacheDepth)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"depth",
		"depth=abc",
		"hazard=bogus",
		"mystery=4",
		"depth=0", // fails validation
	} {
		if _, err := parseConfig(spec); err == nil {
			t.Errorf("spec %q unexpectedly parsed", spec)
		}
	}
}
