package main

import (
	"testing"

	"repro/internal/machconf"
)

// The spec parser itself lives in internal/machconf (spec_test.go covers
// it); here we only pin that the flag defaults stay parseable, so the
// zero-argument invocation documented at the top of the file keeps working.
func TestDefaultSpecsParse(t *testing.T) {
	for _, spec := range []string{
		"depth=4",
		"depth=12,retire=8,hazard=read-from-WB",
	} {
		if _, err := machconf.ParseSpec(spec); err != nil {
			t.Errorf("default spec %q: %v", spec, err)
		}
	}
}
