// Command wbtrace inspects the reference streams the benchmarks generate:
// the dynamic instruction mix, a prefix dump, and a line-footprint summary.
// It is the debugging companion to the workload package — the equivalent of
// eyeballing an ATOM trace.
//
// Usage:
//
//	wbtrace -bench compress -n 200000          # mix + footprint
//	wbtrace -bench fft -dump 40                # first 40 references
//	wbtrace -bench li -record li.wbt           # save a binary trace
//	wbtrace -replay li.wbt                     # analyse a saved trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name")
		n         = flag.Uint64("n", 200_000, "references to analyse")
		dump      = flag.Int("dump", 0, "dump the first k references")
		record    = flag.String("record", "", "write the stream to a binary trace file")
		replay    = flag.String("replay", "", "analyse a recorded trace file instead of a benchmark")
	)
	flag.Parse()

	var s trace.Stream
	var name string
	switch {
	case *replay != "":
		fh, err := os.Open(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		defer fh.Close()
		r, err := trace.NewReader(fh)
		if err != nil {
			fatalf("%v", err)
		}
		s, name = r, *replay
	default:
		b, ok := workload.ByName(*benchName)
		if !ok {
			fatalf("unknown benchmark %q", *benchName)
		}
		s, name = b.Stream(*n), *benchName
		if *record != "" {
			fh, err := os.Create(*record)
			if err != nil {
				fatalf("%v", err)
			}
			count, err := trace.Write(fh, s)
			if err2 := fh.Close(); err == nil {
				err = err2
			}
			if err != nil {
				fatalf("recording: %v", err)
			}
			fmt.Printf("recorded %d references of %s to %s\n", count, name, *record)
			return
		}
	}
	analyse(s, name, dump)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wbtrace: "+format+"\n", args...)
	os.Exit(1)
}

func analyse(s trace.Stream, name string, dump *int) {

	if *dump > 0 {
		for i := 0; i < *dump; i++ {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Kind == trace.Exec {
				fmt.Printf("%6d  exec\n", i)
			} else {
				fmt.Printf("%6d  %-5s %#012x (line %#x, word %d)\n",
					i, r.Kind, r.Addr,
					mem.DefaultGeometry.LineBase(r.Addr),
					mem.DefaultGeometry.WordIndex(r.Addr))
			}
		}
		return
	}

	var mix trace.Mix
	loadLines := map[mem.Addr]uint64{}
	storeLines := map[mem.Addr]uint64{}
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		mix.Add(r)
		switch r.Kind {
		case trace.Load:
			loadLines[mem.DefaultGeometry.LineTag(r.Addr)]++
		case trace.Store:
			storeLines[mem.DefaultGeometry.LineTag(r.Addr)]++
		}
	}

	fmt.Printf("source      %s\n", name)
	fmt.Printf("refs        %d\n", mix.Total())
	fmt.Printf("mix         %.1f%% loads, %.1f%% stores\n",
		mix.PctLoads(), mix.PctStores())
	fmt.Printf("footprint   %d load lines (%.0f KB), %d store lines (%.0f KB)\n",
		len(loadLines), float64(len(loadLines)*mem.LineBytes)/1024,
		len(storeLines), float64(len(storeLines)*mem.LineBytes)/1024)
	fmt.Printf("reuse       top-10%% hottest load lines cover %.1f%% of loads\n",
		topShare(loadLines, mix.Loads))
}

// topShare reports what fraction of accesses the hottest 10% of lines get —
// a quick locality fingerprint.
func topShare(lines map[mem.Addr]uint64, total uint64) float64 {
	if len(lines) == 0 || total == 0 {
		return 0
	}
	counts := make([]uint64, 0, len(lines))
	for _, c := range lines {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	top := len(counts) / 10
	if top == 0 {
		top = 1
	}
	var sum uint64
	for _, c := range counts[:top] {
		sum += c
	}
	return 100 * float64(sum) / float64(total)
}
