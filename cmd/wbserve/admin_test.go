package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tenant"
)

// testKeyring loads a two-tenant keyring: "alice" (plain) and "ops" (admin).
func testKeyring(t *testing.T) *tenant.Keyring {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	body := `{"alice": {"token": "tok-alice"}, "ops": {"token": "tok-ops", "admin": true}}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	k, err := tenant.LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// adminReq sends one request with an optional bearer token.
func adminReq(t *testing.T, ts *httptest.Server, method, path, token, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestAdminRefusedWhenAuthDisabled(t *testing.T) {
	_, ts := testServer(t) // no keyring
	resp := adminReq(t, ts, "POST", "/admin/store/verify", "", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("admin surface without -authkeys: status %d, want 403", resp.StatusCode)
	}
}

func TestAdminAuthRejections(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000, Keyring: testKeyring(t)})

	// Missing token: 401 with the RFC 6750 challenge.
	resp := adminReq(t, ts, "GET", "/admin/store/status", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing token: status %d, want 401", resp.StatusCode)
	}
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Errorf("missing token: WWW-Authenticate = %q, want a Bearer challenge", got)
	}

	// Invalid token: 401.
	if resp := adminReq(t, ts, "GET", "/admin/store/status", "tok-wrong", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("invalid token: status %d, want 401", resp.StatusCode)
	}

	// Valid token without the admin bit: 403.
	if resp := adminReq(t, ts, "GET", "/admin/store/status", "tok-alice", ""); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("non-admin token: status %d, want 403", resp.StatusCode)
	}

	// Valid admin token claiming someone else's tenant name: 403.
	req, _ := http.NewRequest("GET", ts.URL+"/admin/store/status", nil)
	req.Header.Set("Authorization", "Bearer tok-ops")
	req.Header.Set(tenantHeader, "alice")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("contradicting X-WB-Tenant: status %d, want 403", resp2.StatusCode)
	}

	// The admin token itself: 200.
	if resp := adminReq(t, ts, "GET", "/admin/store/status", "tok-ops", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin token: status %d, want 200", resp.StatusCode)
	}
}

func TestRunRequiresTokenWhenAuthEnabled(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000, Keyring: testKeyring(t)})
	body := `{"bench":"li","n":100000,"depth":12,"retire_at":8,"hazard":"read-from-WB"}`

	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /run: status %d, want 401", resp.StatusCode)
	}

	if resp := adminReq(t, ts, "POST", "/run", "tok-alice", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated /run: status %d, want 200", resp.StatusCode)
	}
}

func TestAdminStoreEndpoints(t *testing.T) {
	dir := t.TempDir()
	_, ts := testServerCfg(t, serverConfig{
		CacheSize: 4, MaxN: 5_000_000,
		StoreDir: filepath.Join(dir, "a") + "," + filepath.Join(dir, "b"),
		Keyring:  testKeyring(t),
	})

	// Populate the store with one real result.
	if resp := adminReq(t, ts, "POST", "/run", "tok-ops",
		`{"bench":"li","n":100000,"depth":12,"retire_at":8,"hazard":"read-from-WB"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding run: status %d", resp.StatusCode)
	}

	// Verify: everything healthy.
	resp := adminReq(t, ts, "POST", "/admin/store/verify", "tok-ops", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d", resp.StatusCode)
	}
	var ver struct {
		OK      int `json:"ok"`
		Corrupt int `json:"corrupt"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ver); err != nil {
		t.Fatal(err)
	}
	if ver.OK < 1 || ver.Corrupt != 0 {
		t.Fatalf("verify: ok=%d corrupt=%d, want >=1 healthy and 0 corrupt", ver.OK, ver.Corrupt)
	}

	// Status: replicated across two dirs, entries present.
	resp = adminReq(t, ts, "GET", "/admin/store/status", "tok-ops", "")
	var st storeStatusView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Replicated || len(st.Replicas) != 2 {
		t.Fatalf("status: replicated=%v replicas=%d, want true/2", st.Replicated, len(st.Replicas))
	}
	if st.DiskEntries < 1 {
		t.Fatalf("status: disk_entries=%d, want >=1", st.DiskEntries)
	}

	// Evict a hash nobody has: well-formed, removes nothing.
	resp = adminReq(t, ts, "POST", "/admin/store/evict", "tok-ops", `{"config_hash":"feedface"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d", resp.StatusCode)
	}
	var ev struct {
		Removed int `json:"removed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Removed != 0 {
		t.Fatalf("evicting an unknown hash removed %d entries", ev.Removed)
	}

	// Malformed evict: missing the hash.
	if resp := adminReq(t, ts, "POST", "/admin/store/evict", "tok-ops", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("evict without config_hash: status %d, want 400", resp.StatusCode)
	}

	// Prune to zero: every entry (one per replica counts once) goes.
	resp = adminReq(t, ts, "POST", "/admin/store/prune", "tok-ops", `{"max_entries":0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prune: status %d", resp.StatusCode)
	}
	var pr struct {
		Removed int `json:"removed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Removed < 1 {
		t.Fatalf("prune to 0 removed %d entries, want >=1", pr.Removed)
	}
	if resp := adminReq(t, ts, "POST", "/admin/store/prune", "tok-ops", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("prune without max_entries: status %d, want 400", resp.StatusCode)
	}
}

func TestAdminQueueStatus(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000, Keyring: testKeyring(t)})
	resp := adminReq(t, ts, "GET", "/admin/queue/status", "tok-ops", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queue status: %d", resp.StatusCode)
	}
	var qs struct {
		Depth         int            `json:"depth"`
		DepthByTenant map[string]int `json:"depth_by_tenant"`
		JournalBytes  int64          `json:"journal_bytes"`
		AutoscaleHint int            `json:"autoscale_hint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qs); err != nil {
		t.Fatal(err)
	}
	if qs.Depth != 0 || qs.AutoscaleHint != 0 {
		t.Fatalf("idle queue reports depth=%d hint=%d", qs.Depth, qs.AutoscaleHint)
	}
}

// threeTenantKeyring extends testKeyring with "bob", a second plain tenant,
// for cross-tenant authorization checks.
func threeTenantKeyring(t *testing.T) *tenant.Keyring {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	body := `{"alice": {"token": "tok-alice"}, "bob": {"token": "tok-bob"}, "ops": {"token": "tok-ops", "admin": true}}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	k, err := tenant.LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// With a keyring configured, every read surface that can return stored
// results or drive server work demands a token — run ids are
// content-addressed (derivable from the sweep that created them), so an
// open GET /run/{id} would leak any tenant's results to anyone who can
// phrase the request.  Only /healthz stays open (load balancers carry no
// credentials and readiness leaks nothing).
func TestReadSurfacesRequireTokenWhenAuthEnabled(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000, Keyring: testKeyring(t)})

	if resp := adminReq(t, ts, "GET", "/healthz", "", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz without a token: status %d, want 200 (readiness stays open)", resp.StatusCode)
	}
	for _, path := range []string{"/experiments", "/metrics", "/debug/pprof/", "/debug/vars"} {
		if resp := adminReq(t, ts, "GET", path, "", ""); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET %s without a token: status %d, want 401", path, resp.StatusCode)
		}
		if resp := adminReq(t, ts, "GET", path, "tok-wrong", ""); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET %s with an invalid token: status %d, want 401", path, resp.StatusCode)
		}
		if resp := adminReq(t, ts, "GET", path, "tok-alice", ""); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with a valid non-admin token: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// Run documents are tenant-scoped: the owning tenant and admins read them,
// other tenants get 403, anonymous gets 401 — on both the document and its
// SSE feed.
func TestRunDocumentsAreTenantScoped(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000, Keyring: threeTenantKeyring(t)})

	resp := adminReq(t, ts, "POST", "/run", "tok-alice", `{"bench":"li","n":100000,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST /run: status %d, want 202", resp.StatusCode)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/run/" + doc.ID, "/run/" + doc.ID + "/events"} {
		if resp := adminReq(t, ts, "GET", path, "", ""); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET %s without a token: status %d, want 401", path, resp.StatusCode)
		}
		if resp := adminReq(t, ts, "GET", path, "tok-bob", ""); resp.StatusCode != http.StatusForbidden {
			t.Errorf("GET %s as another tenant: status %d, want 403", path, resp.StatusCode)
		}
	}
	if resp := adminReq(t, ts, "GET", "/run/"+doc.ID, "tok-alice", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("owner reading their run: status %d, want 200", resp.StatusCode)
	}
	if resp := adminReq(t, ts, "GET", "/run/"+doc.ID, "tok-ops", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("admin reading a tenant run: status %d, want 200", resp.StatusCode)
	}
}

// TestAdminEndpointsAllRequireAuth sweeps every admin route with no token:
// each must answer 401, not fall through to its handler.
func TestAdminEndpointsAllRequireAuth(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000, Keyring: testKeyring(t)})
	routes := []struct{ method, path string }{
		{"POST", "/admin/store/verify"},
		{"POST", "/admin/store/evict"},
		{"POST", "/admin/store/prune"},
		{"GET", "/admin/store/status"},
		{"GET", "/admin/queue/status"},
	}
	for _, rt := range routes {
		resp := adminReq(t, ts, rt.method, rt.path, "", "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s without a token: status %d, want 401", rt.method, rt.path, resp.StatusCode)
		}
	}
}
