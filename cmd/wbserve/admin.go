package main

// The authenticated admin surface: the store and queue maintenance
// operations that were library-only before — Verify, EvictHash, Prune,
// scrub reports, journal depth — exposed over HTTP for runbooks and
// automation.  Every handler here sits behind requireAdmin (server.go):
// bearer token required, admin bit required, 401/403 otherwise.  The
// cache-poisoning and disk-fault runbooks in docs/SERVING.md are written
// as curl against these endpoints.

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/resultstore"
)

// handleStoreVerify re-validates every stored entry (POST /admin/store/verify).
// On a replicated store this is a full synchronous scrub pass: corrupt
// copies are quarantined and repaired from healthy replicas.  On a plain
// store corrupt entries are quarantined and will re-simulate on demand.
func (s *server) handleStoreVerify(w http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	ok, corrupt, err := s.store.Verify()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         ok,
		"corrupt":    corrupt,
		"elapsed_ms": time.Since(start).Milliseconds(),
	})
}

// handleStoreEvict removes every entry for one machconf hash
// (POST /admin/store/evict, body {"config_hash":"..."}) — the targeted
// response when one configuration's results are suspect.
func (s *server) handleStoreEvict(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ConfigHash string `json:"config_hash"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<12))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.ConfigHash == "" {
		httpError(w, http.StatusBadRequest, "missing required field %q", "config_hash")
		return
	}
	removed, err := s.store.EvictHash(req.ConfigHash)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "evict: %v", err)
		return
	}
	s.logf("wbserve: admin evicted %d entries for config hash %s", removed, req.ConfigHash)
	writeJSON(w, http.StatusOK, map[string]any{
		"config_hash": req.ConfigHash,
		"removed":     removed,
	})
}

// handleStorePrune bounds the disk tier (POST /admin/store/prune, body
// {"max_entries": N}): oldest entries beyond the bound are removed — the
// garbage-collection step of the sizing guide.
func (s *server) handleStorePrune(w http.ResponseWriter, r *http.Request) {
	var req struct {
		MaxEntries *int `json:"max_entries"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<12))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.MaxEntries == nil || *req.MaxEntries < 0 {
		httpError(w, http.StatusBadRequest, "max_entries must be present and non-negative")
		return
	}
	removed, err := s.store.Prune(*req.MaxEntries)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "prune: %v", err)
		return
	}
	s.logf("wbserve: admin pruned %d entries (bound %d)", removed, *req.MaxEntries)
	writeJSON(w, http.StatusOK, map[string]any{
		"max_entries": *req.MaxEntries,
		"removed":     removed,
	})
}

// storeStatusView is GET /admin/store/status: tier sizes, and — for a
// replicated store — per-replica figures and the last scrub pass.
type storeStatusView struct {
	Replicated  bool                      `json:"replicated"`
	DiskEntries int                       `json:"disk_entries"`
	DiskBytes   int64                     `json:"disk_bytes"`
	MemEntries  int                       `json:"mem_entries"`
	Quarantined int                       `json:"quarantined,omitempty"`
	Replicas    []resultstore.ReplicaStat `json:"replicas,omitempty"`
	LastScrub   *scrubView                `json:"last_scrub,omitempty"`
}

type scrubView struct {
	resultstore.ScrubReport
	When   time.Time `json:"when"`
	Passes int       `json:"passes"`
}

func (s *server) handleStoreStatus(w http.ResponseWriter, _ *http.Request) {
	var v storeStatusView
	v.DiskEntries, v.DiskBytes, v.MemEntries = s.store.Stats()
	switch st := s.store.(type) {
	case *resultstore.Replicated:
		v.Replicated = true
		v.Replicas = st.ReplicaStats()
		for _, r := range v.Replicas {
			v.Quarantined += r.Quarantined
		}
		if rep, when, passes := st.LastScrub(); passes > 0 {
			v.LastScrub = &scrubView{ScrubReport: rep, When: when, Passes: passes}
		}
	case *resultstore.Store:
		v.Quarantined = st.Quarantined()
	}
	writeJSON(w, http.StatusOK, v)
}

// handleQueueStatus is GET /admin/queue/status: backlog depth (total and
// per tenant), journal size, and run accounting — the figures the
// autoscale hint and the supervisor act on, exposed for operators.
func (s *server) handleQueueStatus(w http.ResponseWriter, _ *http.Request) {
	depth := s.queue.Depth()
	runs, skipped := s.queue.Loaded()
	writeJSON(w, http.StatusOK, map[string]any{
		"depth":           depth,
		"depth_by_tenant": s.queue.DepthByTenant(),
		"journal_bytes":   s.queue.JournalBytes(),
		"replayed_runs":   runs,
		"skipped_lines":   skipped,
		"autoscale_hint":  (depth + autoscaleJobsPerWorker - 1) / autoscaleJobsPerWorker,
	})
}
