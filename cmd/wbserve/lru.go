package main

import (
	"container/list"
	"sync"
)

// lruCache is a bounded least-recently-used map from normalized request
// keys to finished measurements.  A simulation costs tens of milliseconds
// and its result is immutable for a deterministic workload suite, so the
// cache turns repeated dashboard queries into O(1) lookups; the bound
// keeps a long-lived server's memory flat.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *RunResponse
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached response and marks it most recently used.
func (c *lruCache) get(key string) (*RunResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// put inserts or refreshes a response, evicting the least recently used
// entry when over capacity.
func (c *lruCache) put(key string, resp *RunResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
