package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/jobqueue"
	"repro/internal/machconf"
	"repro/internal/metrics"
	"repro/internal/resultstore"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// tenantHeader attributes a request to a tenant for rate limiting, quotas,
// and per-tenant metrics.  Absent means tenant.DefaultName.
const tenantHeader = "X-WB-Tenant"

// autoscaleJobsPerWorker is the queue depth one additional worker process
// is assumed to absorb; /metrics divides the backlog by it to produce
// wbserve_autoscale_workers_hint.
const autoscaleJobsPerWorker = 8

// RunRequest is the JSON body of POST /run.  Zero-valued fields take the
// paper's baseline (Tables 1 and 2), mirroring the wbsim flag defaults, so
// {"bench":"li"} is a complete request.
type RunRequest struct {
	// Bench names a benchmark from the suite (wbsim -list).  Exactly one of
	// Bench and Benches is required.
	Bench string `json:"bench"`
	// Benches sweeps several benchmarks under one machine as a single run —
	// the sweep is queued as one durable unit with one run id.
	Benches []string `json:"benches,omitempty"`
	// Async, when true, answers 202 immediately with the run document;
	// progress streams on GET /run/{id}/events and results land on GET
	// /run/{id}.  False (the default) blocks until the sweep completes.
	Async bool `json:"async,omitempty"`
	// N is the dynamic instruction count (default one million).  The
	// first quarter is warm-up and excluded from the measurement.
	N uint64 `json:"n,omitempty"`
	// Depth and Width shape the write buffer (entries × words per entry).
	Depth int `json:"depth,omitempty"`
	Width int `json:"width,omitempty"`
	// RetireAt is the retire-at high-water mark; AgingTimeout adds the
	// aging clause (cycles, 0 = off).
	RetireAt     int    `json:"retire_at,omitempty"`
	AgingTimeout uint64 `json:"aging_timeout,omitempty"`
	// Hazard is the load-hazard policy: flush-full, flush-partial,
	// flush-item-only, or read-from-WB.
	Hazard string `json:"hazard,omitempty"`
	// L1Size, L2Lat, L2Size, MemLat configure the hierarchy; L2Size 0 is
	// the paper's perfect L2.
	L1Size int    `json:"l1_size,omitempty"`
	L2Lat  uint64 `json:"l2_lat,omitempty"`
	L2Size int    `json:"l2_size,omitempty"`
	MemLat uint64 `json:"mem_lat,omitempty"`
	// WriteCache, when > 0, swaps the write buffer for a write cache of
	// that depth; IssueWidth > 1 enables the superscalar extension.
	WriteCache int `json:"write_cache,omitempty"`
	IssueWidth int `json:"issue_width,omitempty"`
	// Config, when present, is a complete machconf machine description (as
	// produced by wbsim -dump-config or machconf.Encode).  It replaces
	// every machine-shaping scalar above — mixing the two is an error —
	// and is the only way to request a registry-registered custom policy.
	Config json.RawMessage `json:"config,omitempty"`
}

// hasScalarConfig reports whether any machine-shaping scalar field was set.
func (r RunRequest) hasScalarConfig() bool {
	return r.Depth != 0 || r.Width != 0 || r.RetireAt != 0 || r.AgingTimeout != 0 ||
		r.Hazard != "" || r.L1Size != 0 || r.L2Lat != 0 || r.L2Size != 0 ||
		r.MemLat != 0 || r.WriteCache != 0 || r.IssueWidth != 0
}

// benchList returns the requested benchmark names (Bench or Benches),
// post-normalize.
func (r RunRequest) benchList() []string {
	if len(r.Benches) > 0 {
		return r.Benches
	}
	return []string{r.Bench}
}

// normalize fills baseline defaults so equivalent requests share one store
// key, and validates ranges the simulator cannot (the instruction cap).
func (r RunRequest) normalize(maxN uint64) (RunRequest, error) {
	if r.Bench != "" && len(r.Benches) > 0 {
		return r, fmt.Errorf("bench and benches are mutually exclusive")
	}
	if r.Bench == "" && len(r.Benches) == 0 {
		return r, fmt.Errorf("missing required field %q", "bench")
	}
	seen := map[string]bool{}
	for _, b := range r.Benches {
		if b == "" {
			return r, fmt.Errorf("benches contains an empty name")
		}
		if seen[b] {
			return r, fmt.Errorf("benches lists %q twice", b)
		}
		seen[b] = true
	}
	if r.N == 0 {
		r.N = 1_000_000
	}
	if r.N > maxN {
		return r, fmt.Errorf("n %d exceeds the server cap of %d", r.N, maxN)
	}
	if len(r.Config) > 0 {
		if r.hasScalarConfig() {
			return r, fmt.Errorf("config blob and machine fields are mutually exclusive")
		}
		return r, nil
	}
	if r.Depth == 0 {
		r.Depth = 4
	}
	if r.Width == 0 {
		r.Width = 4
	}
	if r.RetireAt == 0 {
		r.RetireAt = 2
	}
	if r.Hazard == "" {
		r.Hazard = core.FlushFull.String()
	}
	if r.L1Size == 0 {
		r.L1Size = 8 << 10
	}
	if r.L2Lat == 0 {
		r.L2Lat = 6
	}
	if r.MemLat == 0 {
		r.MemLat = 25
	}
	return r, nil
}

// errInvalidConfig marks a request whose JSON was well-formed but whose
// machine fails sim.Config.Validate — the client described an impossible
// configuration, so /run answers 422, not 400 (malformed request) or 500
// (server fault).
var errInvalidConfig = errors.New("invalid machine configuration")

// config builds the simulator configuration — decoding the machconf blob
// when one was sent, assembling the scalars otherwise — and relies on
// machconf.Validate for the microarchitectural invariants; validation
// failures are wrapped in errInvalidConfig.
func (r RunRequest) config() (sim.Config, error) {
	if len(r.Config) > 0 {
		cfg, err := machconf.Decode(r.Config)
		if err != nil {
			return sim.Config{}, err
		}
		if err := machconf.Validate(cfg); err != nil {
			return sim.Config{}, fmt.Errorf("%w: %v", errInvalidConfig, err)
		}
		return cfg, nil
	}
	hazard, ok := machconf.HazardByName(r.Hazard)
	if !ok {
		return sim.Config{}, fmt.Errorf("unknown hazard policy %q", r.Hazard)
	}
	cfg := sim.Baseline().
		WithDepth(r.Depth).
		WithRetire(core.RetireAt{N: r.RetireAt, Timeout: r.AgingTimeout}).
		WithHazard(hazard).
		WithL1Size(r.L1Size).
		WithL2Latency(r.L2Lat).
		WithMemLat(r.MemLat).
		WithIssueWidth(r.IssueWidth)
	cfg.WB.WordsPerEntry = r.Width
	if r.L2Size > 0 {
		cfg = cfg.WithL2(r.L2Size)
	}
	if r.WriteCache > 0 {
		cfg = cfg.WithWriteCache(r.WriteCache)
	}
	if err := machconf.Validate(cfg); err != nil {
		return sim.Config{}, fmt.Errorf("%w: %v", errInvalidConfig, err)
	}
	return cfg, nil
}

// label renders the request as a compact descriptor: the non-baseline
// scalars, or the canonical hash prefix when the machine arrived as a blob.
func (r RunRequest) label(hash string) string {
	if len(r.Config) > 0 {
		return "machconf:" + hash[:12]
	}
	return fmt.Sprintf("depth=%d,width=%d,retire=%d,hazard=%s", r.Depth, r.Width, r.RetireAt, r.Hazard)
}

// RunResponse is the JSON reply of POST /run: the paper's measurement for
// one (benchmark, configuration) pair.
type RunResponse struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	// Instructions and Cycles cover the measured (post-warm-up) window.
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	CPI          float64 `json:"cpi"`
	// StallPct carries the paper's headline metric per category plus the
	// total, as a percentage of execution time.
	StallPct  map[string]float64 `json:"stall_pct"`
	L1HitRate float64            `json:"l1_hit_rate"`
	WBHitRate float64            `json:"wb_hit_rate"`
	L2HitRate float64            `json:"l2_hit_rate"`
	Loads     uint64             `json:"loads"`
	Stores    uint64             `json:"stores"`
	// Retirements vs FlushedEntries splits L2 write traffic into
	// autonomous drains and hazard-forced flushes.
	Retirements    uint64 `json:"retirements"`
	FlushedEntries uint64 `json:"flushed_entries"`
	WBReadHits     uint64 `json:"wb_read_hits"`
	HazardEvents   uint64 `json:"hazard_events"`
	// Cached reports whether the measurement was answered from the result
	// store without waiting for a simulation.
	Cached bool `json:"cached"`
}

func responseFrom(m experiment.Measurement) *RunResponse {
	c := m.C
	stall := map[string]float64{"total": c.TotalStallPct()}
	for k := range c.Stalls {
		kind := stats.StallKind(k)
		if c.Stalls[k] > 0 || kind <= stats.LoadHazard {
			stall[kind.String()] = c.StallPct(kind)
		}
	}
	return &RunResponse{
		Bench:          m.Bench,
		Config:         m.Label,
		Instructions:   c.Instructions,
		Cycles:         c.Cycles,
		CPI:            c.CPI(),
		StallPct:       stall,
		L1HitRate:      m.L1Hit,
		WBHitRate:      m.WBHit,
		L2HitRate:      m.L2Hit,
		Loads:          c.Loads,
		Stores:         c.Stores,
		Retirements:    c.Retirements,
		FlushedEntries: c.FlushedEntries,
		WBReadHits:     c.WBReadHits,
		HazardEvents:   c.HazardEvents,
	}
}

// serverConfig assembles a server; zero values select the in-memory
// single-process behaviour wbserve has always had.
type serverConfig struct {
	// CacheSize bounds the result store's in-memory tier; must be >= 1 (a
	// zero-entry cache would turn every repeated request into a disk read or
	// a re-simulation, which is never what an operator means — use -maxn to
	// bound work, or simply accept the 1-entry minimum).
	CacheSize int
	// MaxN caps per-request instruction counts.
	MaxN uint64
	// Worker additionally serves POST /job for dispatch coordinators.
	Worker bool
	// StoreDir is the durable result-store root — or a comma-separated
	// list of roots, which opens a self-healing replicated store; empty
	// keeps results in memory only.
	StoreDir string
	// ScrubInterval starts the replicated store's background scrubber
	// (ignored for a single-directory or memory-only store).
	ScrubInterval time.Duration
	// Keyring, when non-nil, turns bearer-token authentication on: POST
	// /run requires a valid token and the /admin surface additionally
	// requires the admin bit.  Nil keeps identity header-declared and the
	// admin surface disabled.
	Keyring *tenant.Keyring
	// WorkerAddrs, when non-empty, routes simulations through a
	// dispatch.Remote pool over these addresses instead of the in-process
	// local backend (still wrapped with the result store).  Supervisor mode
	// preassigns one address per worker slot here; addresses with no
	// process yet are simply unhealthy until the supervisor starts them,
	// and with every address down execution falls back in-process.
	WorkerAddrs []string
	// QueuePath is the durable job-queue journal; empty keeps the queue in
	// memory.  A durable queue requires a durable store: done markers mean
	// "the result is in the store", which a memory-only store cannot honour
	// across a restart.
	QueuePath string
	// Dispatchers is the number of simulation goroutines draining the
	// queue; values below 1 select runtime.NumCPU().
	Dispatchers int
	// TenantDefaults and TenantOverrides configure admission control
	// (tenant.NewRegistry).
	TenantDefaults  tenant.Limits
	TenantOverrides map[string]tenant.Limits
	// Logf receives operational events; nil discards them.
	Logf func(format string, args ...any)
	// testBackend, when non-nil, wraps the fully assembled backend —
	// Cached(Local or Remote) — before the dispatcher pool starts.  Local
	// execution cannot fail for an admitted config, so tests use this seam
	// to exercise the dispatcher's failure and not-stored paths behind the
	// real queue/store/registry stack.  Unexported: not reachable from flags.
	testBackend func(dispatch.Backend) dispatch.Backend
}

// server ties the HTTP surface to the sweep platform: the shared result
// store (memory tier + optional durable tier), the durable job queue and
// its dispatcher pool, per-tenant admission control, the live run registry
// behind GET /run/{id} and its SSE feed, and a readiness state that
// sequences graceful shutdown (drain begins → /healthz flips to 503 so
// dispatchers stop routing here → new work is refused → in-flight requests
// finish under http.Server.Shutdown).
type server struct {
	reg      *metrics.Registry
	maxN     uint64
	worker   bool
	ready    *dispatch.Readiness
	inflight atomic.Int64

	store   resultstore.Interface
	queue   *jobqueue.Queue
	tenants *tenant.Registry
	keys    *tenant.Keyring
	runs    *runRegistry
	remote  *dispatch.Remote // nil unless WorkerAddrs routed through a pool
	backend dispatch.Backend

	logf   func(format string, args ...any)
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.CacheSize < 1 {
		return nil, fmt.Errorf("cachesize must be at least 1, got %d (the in-memory result tier needs room for one entry; use -store for durability, -maxn to bound work)", cfg.CacheSize)
	}
	if cfg.QueuePath != "" && cfg.StoreDir == "" {
		return nil, fmt.Errorf("-queue requires -store: queue done markers promise the result is durably stored, which a memory-only store cannot honour across a restart")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg := metrics.NewRegistry()
	store, err := resultstore.OpenSpec(cfg.StoreDir, resultstore.Options{
		MemoryEntries: cfg.CacheSize,
		Metrics:       reg,
		Logf:          logf,
		ScrubInterval: cfg.ScrubInterval,
	})
	if err != nil {
		return nil, err
	}
	queue, err := jobqueue.Open(cfg.QueuePath, reg, logf)
	if err != nil {
		store.Close()
		return nil, err
	}
	var inner dispatch.Backend = &dispatch.Local{Metrics: reg}
	var remote *dispatch.Remote
	if len(cfg.WorkerAddrs) > 0 {
		remote, err = dispatch.NewRemote(cfg.WorkerAddrs, dispatch.RemoteOptions{
			FallbackLocal:   true,
			QuarantineAfter: 2,
			ProbeInterval:   500 * time.Millisecond,
			Metrics:         reg,
			Logf:            logf,
		})
		if err != nil {
			store.Close()
			queue.Close()
			return nil, err
		}
		inner = remote
	}
	s := &server{
		reg:     reg,
		maxN:    cfg.MaxN,
		worker:  cfg.Worker,
		ready:   dispatch.NewReadiness(),
		store:   store,
		queue:   queue,
		tenants: tenant.NewRegistry(cfg.TenantDefaults, cfg.TenantOverrides, reg),
		keys:    cfg.Keyring,
		runs:    newRunRegistry(),
		remote:  remote,
		backend: dispatch.NewCached(inner, store, reg),
		logf:    logf,
	}
	if cfg.testBackend != nil {
		s.backend = cfg.testBackend(s.backend)
	}
	// Recovery: re-register every journaled run (so GET /run/{id} answers
	// across restarts), then rebuild the pending FIFO from jobs whose
	// results are in neither the journal's done set nor the store.
	for _, run := range queue.Runs() {
		s.runs.register(run, s.storeHas)
	}
	if resumed := queue.Resume(s.storeHas); resumed > 0 {
		logf("wbserve: resuming %d journaled jobs", resumed)
	}
	n := cfg.Dispatchers
	if n < 1 {
		n = runtime.NumCPU()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.dispatchLoop(ctx)
	}
	// Construction is cheap and the process serves nothing until the
	// listener is up, so the server is born ready; main flips it to
	// draining on SIGINT/SIGTERM.
	s.ready.SetReady()
	return s, nil
}

// Close stops the dispatcher pool and closes the queue journal.  In-flight
// jobs are abandoned without done markers, so the journal re-delivers them
// on the next start — at-least-once, made harmless by determinism and the
// store.
func (s *server) Close() {
	s.cancel()
	s.wg.Wait()
	_ = s.queue.Close()
	if s.remote != nil {
		s.remote.Close()
	}
	_ = s.store.Close() // stops the replicated store's scrubber
}

// storeHas is the result store's membership test, threaded into queue
// submission, resume, and run registration as the "already paid for"
// predicate.
func (s *server) storeHas(key string) bool {
	_, ok := s.store.Get(key)
	return ok
}

// resolveBench looks a benchmark name up in the registered suite, falling
// back to the deterministic transformed variants (same lookup POST /run has
// always done).
func resolveBench(name string) (workload.Benchmark, bool) {
	if b, ok := workload.ByName(name); ok {
		return b, true
	}
	for _, t := range workload.Transformed() {
		if t.Name == name {
			return t, true
		}
	}
	return workload.Benchmark{}, false
}

// dispatchLoop is one simulation worker: dequeue, execute through the
// store-backed backend, journal the done marker, fan completion out to
// every waiting run.  The store write happens inside backend.Run (the
// Cached wrapper), strictly before the done marker — the ordering the
// queue's recovery protocol trusts.  A job whose store write failed
// (dispatch.ErrResultNotStored) still completes its runs — the measurement
// is in hand and the memory tier serves it for this process's lifetime —
// but gets NO done marker: the journal's documented invariant is "done =
// the result is durably in the store", and replay re-runs the job once the
// disk recovers.
func (s *server) dispatchLoop(ctx context.Context) {
	defer s.wg.Done()
	dispatched := s.reg.Counter("wbserve_dispatched_jobs_total")
	failures := s.reg.Counter("wbserve_job_failures_total")
	unstored := s.reg.Counter("wbserve_store_put_failures_total")
	for {
		job, err := s.queue.Dequeue(ctx)
		if err != nil {
			return
		}
		dispatched.Inc()
		start := time.Now()
		var m dispatch.Measurement
		cfg, err := machconf.Decode(job.Config)
		if err == nil {
			m, err = s.backend.Run(ctx, dispatch.Job{Bench: job.Bench, Label: job.Label, Cfg: cfg, N: job.N})
		}
		stored := err == nil
		if errors.Is(err, dispatch.ErrResultNotStored) {
			unstored.Inc()
			s.logf("wbserve: job %s executed but was not durably stored (no done marker; it re-runs after a restart): %v", job.Key, err)
			err = nil
		}
		if err != nil {
			if ctx.Err() != nil {
				// Shutdown took the job down with it; no done marker, so the
				// journal re-delivers it on the next start.
				return
			}
			// Jobs are validated at admission and deterministic, so this is
			// exceptional (disk full, config skew).  Leave the journal honest
			// — no done marker — and record a distinct *failure* on every
			// waiting run: waiters are released, but the job is not counted
			// done, so the ledger never claims a result it does not have and
			// a resubmission (or the post-restart replay) retries it.
			failures.Inc()
			s.logf("wbserve: job %s failed: %v", job.Key, err)
			s.runs.fail(job.Key, experiment.ProgressEvent{Bench: job.Bench, Label: job.Label})
			continue
		}
		if stored {
			_ = s.queue.Done(job.Key)
		}
		jt := time.Since(start)
		s.reg.Counter("experiment_jobs_total").Inc()
		s.reg.Counter("experiment_instructions_total").Add(m.C.Instructions)
		s.reg.Histogram("experiment_job_microseconds").Observe(uint64(jt.Microseconds()))
		tn := job.Tenant
		if tn == "" {
			tn = tenant.DefaultName
		}
		s.reg.Counter(metrics.Label("wbserve_tenant_jobs_total", "tenant", tn)).Inc()
		s.runs.complete(job.Key, experiment.ProgressEvent{
			Bench:        job.Bench,
			Label:        job.Label,
			Instructions: m.C.Instructions,
			Cycles:       m.C.Cycles,
			JobTime:      time.Since(start),
		})
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.instrument("/experiments", s.requireAuth(s.handleExperiments)))
	mux.HandleFunc("POST /run", s.instrument("/run", s.refuseWhenDraining(s.handleRun)))
	mux.HandleFunc("GET /run/{id}", s.instrument("/run/{id}", s.handleRunStatus))
	mux.HandleFunc("GET /run/{id}/events", s.instrument("/run/{id}/events", s.handleRunEvents))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.requireAuth(s.handleMetrics)))
	// The authenticated admin surface (admin.go): store maintenance and
	// queue introspection, admin-bit tenants only.
	mux.HandleFunc("POST /admin/store/verify", s.instrument("/admin/store/verify", s.requireAdmin(s.handleStoreVerify)))
	mux.HandleFunc("POST /admin/store/evict", s.instrument("/admin/store/evict", s.requireAdmin(s.handleStoreEvict)))
	mux.HandleFunc("POST /admin/store/prune", s.instrument("/admin/store/prune", s.requireAdmin(s.handleStorePrune)))
	mux.HandleFunc("GET /admin/store/status", s.instrument("/admin/store/status", s.requireAdmin(s.handleStoreStatus)))
	mux.HandleFunc("GET /admin/queue/status", s.instrument("/admin/queue/status", s.requireAdmin(s.handleQueueStatus)))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Readiness, not liveness: a draining (or starting) process
		// answers 503 so load balancers and the dispatch re-prober route
		// around it, with the state name as the body for operators.
		if !s.ready.IsReady() {
			http.Error(w, s.ready.State(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	if s.worker {
		// The sweep-worker surface: POST /job runs one wire-encoded
		// matrix job for a dispatch.Remote coordinator, feeding the same
		// registry /metrics exports.  The shared readiness state makes
		// the worker refuse jobs (503 → dispatcher retries elsewhere)
		// once draining begins.
		jobs := dispatch.WorkerHandlerState(s.reg, s.ready)
		mux.Handle("POST /job", s.instrument("/job", jobs.ServeHTTP))
	}
	// Profiles and expvar can read process internals and burn CPU; with a
	// keyring configured they demand a token like every other read surface.
	mux.HandleFunc("/debug/pprof/", s.requireAuth(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", s.requireAuth(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", s.requireAuth(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", s.requireAuth(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", s.requireAuth(pprof.Trace))
	mux.Handle("/debug/vars", s.requireAuth(expvar.Handler().ServeHTTP))
	return mux
}

// refuseWhenDraining gates a work-accepting endpoint on readiness: during
// shutdown, in-flight requests finish but new work gets an immediate 503
// (transient, safe to retry elsewhere) instead of racing the listener.
func (s *server) refuseWhenDraining(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.IsReady() {
			httpError(w, http.StatusServiceUnavailable, "server is %s", s.ready.State())
			return
		}
		h(w, r)
	}
}

// instrument wraps a handler with request counting, latency tracking, and
// the shared in-flight gauge.
func (s *server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.Counter(metrics.Label("wbserve_requests_total", "path", path))
	latency := s.reg.Histogram(metrics.Label("wbserve_request_microseconds", "path", path))
	inflight := s.reg.Gauge("wbserve_inflight_requests")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		inflight.Set(float64(s.inflight.Add(1)))
		defer func() {
			inflight.Set(float64(s.inflight.Add(-1)))
			latency.Observe(uint64(time.Since(start).Microseconds()))
		}()
		h(w, r)
	}
}

func (s *server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []item
	for _, e := range experiment.All() {
		out = append(out, item{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// identify resolves the caller's tenant identity.  With no keyring the
// identity is header-declared (the platform's historical honest
// multi-tenancy).  With a keyring, a valid bearer token is required —
// missing or invalid answers 401 — and an X-WB-Tenant header that
// contradicts the token's tenant answers 403 (claiming someone else's
// name with your own valid token is a permission problem, not an
// authentication one).
func (s *server) identify(r *http.Request) (tenant.Identity, int, string) {
	claimed := r.Header.Get(tenantHeader)
	if !s.keys.Enabled() {
		if claimed == "" {
			claimed = tenant.DefaultName
		}
		return tenant.Identity{Name: claimed}, 0, ""
	}
	tok := tenant.BearerToken(r.Header.Get("Authorization"))
	if tok == "" {
		return tenant.Identity{}, http.StatusUnauthorized, "missing bearer token (Authorization: Bearer <token>)"
	}
	id, ok := s.keys.Authenticate(tok)
	if !ok {
		return tenant.Identity{}, http.StatusUnauthorized, "invalid bearer token"
	}
	if claimed != "" && claimed != id.Name {
		return tenant.Identity{}, http.StatusForbidden,
			fmt.Sprintf("token belongs to tenant %q, not %q", id.Name, claimed)
	}
	return id, 0, ""
}

// refuseUnidentified answers an identify failure, with the RFC 6750
// challenge header on 401s.
func refuseUnidentified(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusUnauthorized {
		w.Header().Set("WWW-Authenticate", `Bearer realm="wbserve"`)
	}
	httpError(w, status, "%s", msg)
}

// requireAuth gates a read surface on authentication: with a keyring
// configured, any valid bearer token passes (no admin bit needed); without
// one the handler stays open, same as it always was.  Run documents and
// results are content-addressed — their ids are derivable from the request
// that created them — so with -authkeys every surface that can return
// stored results or drive server work (metrics, profiles) demands a token,
// not just POST /run.  /healthz stays open: load balancers do not carry
// credentials, and readiness leaks nothing.
func (s *server) requireAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.keys.Enabled() {
			if _, status, msg := s.identify(r); status != 0 {
				refuseUnidentified(w, status, msg)
				return
			}
		}
		h(w, r)
	}
}

// lookupRun authenticates the caller (when a keyring is configured),
// resolves {id} to a registered run, and enforces tenant scope: only the
// owning tenant or an admin may read a run document or its event stream.
// Authentication comes BEFORE the lookup, so anonymous callers always see
// 401 and learn nothing about which run ids exist.  Writes the refusal and
// reports false when the caller may not proceed.
func (s *server) lookupRun(w http.ResponseWriter, r *http.Request) (*runState, bool) {
	var id tenant.Identity
	if s.keys.Enabled() {
		var status int
		var msg string
		id, status, msg = s.identify(r)
		if status != 0 {
			refuseUnidentified(w, status, msg)
			return nil, false
		}
	}
	st, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return nil, false
	}
	if s.keys.Enabled() && !id.Admin && st.run.Tenant != id.Name {
		httpError(w, http.StatusForbidden, "run %s belongs to tenant %q", st.run.ID, st.run.Tenant)
		return nil, false
	}
	return st, true
}

// requireAdmin gates the /admin surface: 403 when authentication is off
// entirely (an unauthenticated admin API is not an API, it is an incident),
// 401 for missing/invalid tokens, 403 for authenticated tenants without
// the admin bit.
func (s *server) requireAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.keys.Enabled() {
			httpError(w, http.StatusForbidden, "admin API disabled: start wbserve with -authkeys to enable it")
			return
		}
		id, status, msg := s.identify(r)
		if status != 0 {
			refuseUnidentified(w, status, msg)
			return
		}
		if !id.Admin {
			httpError(w, http.StatusForbidden, "tenant %q lacks the admin bit", id.Name)
			return
		}
		h(w, r)
	}
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	id, status, msg := s.identify(r)
	if status != 0 {
		refuseUnidentified(w, status, msg)
		return
	}
	tn := id.Name
	if !s.tenants.Allow(tn) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant %q is over its request rate", tn)
		return
	}
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	req, err := req.normalize(s.maxN)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	benches := req.benchList()
	for _, name := range benches {
		if _, ok := resolveBench(name); !ok {
			httpError(w, http.StatusBadRequest, "unknown benchmark %q", name)
			return
		}
	}
	cfg, err := req.config()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errInvalidConfig) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, "%v", err)
		return
	}
	hash, err := machconf.Hash(cfg)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	blob, err := machconf.Encode(cfg)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	label := req.label(hash)
	jobs := make([]jobqueue.Job, 0, len(benches))
	for _, name := range benches {
		jobs = append(jobs, jobqueue.Job{
			Bench:  name,
			Label:  label,
			N:      req.N,
			Config: blob,
			Key:    resultstore.Key(name, req.N, hash),
			Tenant: tn,
		})
	}

	// Fast path for the classic synchronous single-job request: a store hit
	// answers without touching the queue (and keeps the historical
	// wbserve_cache_* series meaningful — hits never simulate, misses do).
	if !req.Async && len(jobs) == 1 {
		if payload, ok := s.store.Get(jobs[0].Key); ok {
			s.reg.Counter("wbserve_cache_hits_total").Inc()
			resp, err := s.responseFromPayload(payload, jobs[0])
			if err != nil {
				httpError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			resp.Cached = true
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	// Admission: the pending-work quota counts jobs not yet known done to
	// the journal (store-answered duplicates are forgiven at Submit).
	want := 0
	for _, j := range jobs {
		if !s.queue.IsDone(j.Key) {
			want++
		}
	}
	if !s.tenants.AdmitPending(tn, s.queue.DepthByTenant()[tn], want) {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, "tenant %q is over its pending-work quota", tn)
		return
	}

	run := jobqueue.Run{ID: runID(tn, jobs), Tenant: tn, Jobs: jobs}
	st := s.runs.register(run, s.storeHas)
	if _, err := s.queue.Submit(run, s.storeHas); err != nil {
		httpError(w, http.StatusInternalServerError, "enqueueing run: %v", err)
		return
	}
	if !req.Async && len(jobs) == 1 {
		s.reg.Counter("wbserve_cache_misses_total").Inc()
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, s.runDoc(st, false))
		return
	}
	select {
	case <-st.finished:
	case <-r.Context().Done():
		return // client gave up; the sweep keeps draining and the store keeps the results
	}
	if len(jobs) == 1 {
		payload, ok := s.store.Get(jobs[0].Key)
		if !ok {
			httpError(w, http.StatusInternalServerError, "job %s completed without a stored result (see wbserve_job_failures_total)", jobs[0].Key)
			return
		}
		resp, err := s.responseFromPayload(payload, jobs[0])
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusOK, s.runDoc(st, true))
}

// responseFromPayload decodes a stored (label-stripped) measurement and
// re-applies the requesting sweep's presentation label.
func (s *server) responseFromPayload(payload []byte, job jobqueue.Job) (*RunResponse, error) {
	var m experiment.Measurement
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("decoding stored result %s: %w", job.Key, err)
	}
	m.Label = job.Label
	if m.Bench == "" {
		m.Bench = job.Bench
	}
	return responseFrom(m), nil
}

// runJobView is one job's row in the run document.  Done and Failed are
// mutually exclusive; a failed job has no stored result and no journal done
// marker, so it retries on resubmission or after a restart.
type runJobView struct {
	Bench  string `json:"bench"`
	Label  string `json:"label,omitempty"`
	N      uint64 `json:"n"`
	Key    string `json:"key"`
	Done   bool   `json:"done"`
	Failed bool   `json:"failed,omitempty"`
}

// runView is the run document: POST /run's 202 body and GET /run/{id}'s
// response.  Results, when requested, are rebuilt from the store in job
// order (null for jobs still pending), so the document is byte-identical
// no matter which process — or which side of a kill -9 — serves it.
type runView struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	// Failed counts jobs whose last attempt errored.  They are not Done —
	// Complete stays false — and they rerun on resubmission or restart.
	Failed    int            `json:"failed,omitempty"`
	Complete  bool           `json:"complete"`
	EventsURL string         `json:"events_url"`
	Jobs      []runJobView   `json:"jobs"`
	Results   []*RunResponse `json:"results,omitempty"`
}

func (s *server) runDoc(st *runState, withResults bool) runView {
	done, failed := st.doneKeys()
	v := runView{
		ID:        st.run.ID,
		Tenant:    st.run.Tenant,
		Total:     len(st.run.Jobs),
		Done:      len(done),
		Failed:    len(failed),
		Complete:  len(done) == len(st.run.Jobs),
		EventsURL: "/run/" + st.run.ID + "/events",
	}
	for _, j := range st.run.Jobs {
		v.Jobs = append(v.Jobs, runJobView{
			Bench: j.Bench, Label: j.Label, N: j.N, Key: j.Key,
			Done: done[j.Key], Failed: failed[j.Key],
		})
	}
	if withResults {
		v.Results = make([]*RunResponse, len(st.run.Jobs))
		for i, j := range st.run.Jobs {
			if !done[j.Key] {
				continue
			}
			if payload, ok := s.store.Get(j.Key); ok {
				if resp, err := s.responseFromPayload(payload, j); err == nil {
					v.Results[i] = resp
				}
			}
		}
	}
	return v
}

func (s *server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.runDoc(st, true))
}

// handleRunEvents streams a run's ETA/MIPS progress series as Server-Sent
// Events: one catch-up `progress` event on attach, one per completed job,
// and a final `done` event when the run finishes.  The numbers come from
// the same experiment.Tracker the terminal reporter renders.
//
// Every broadcast carries its run-local sequence number as the SSE `id:`
// field, and a reconnecting client that presents it back as Last-Event-ID
// (which EventSource does automatically) resumes with a replay of exactly
// the completions it missed instead of a lossy snapshot.  A client further
// behind than the replay buffer — or resuming across a server restart —
// falls back to the catch-up snapshot, same as a fresh attach.
func (s *server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the replay/snapshot so no completion can fall
	// between them; seen tracks the highest Seq already written so live
	// updates that raced the replay are not delivered twice.
	updates, unsubscribe := st.subscribe()
	defer unsubscribe()
	var seen uint64
	resumed := false
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if after, err := strconv.ParseUint(v, 10, 64); err == nil {
			if replay, ok := st.updatesSince(after); ok {
				for _, u := range replay {
					if u.Complete {
						writeSSE(w, flusher, "done", u)
						return
					}
					writeSSE(w, flusher, "progress", u)
				}
				seen, resumed = after, true
				if n := len(replay); n > 0 {
					seen = replay[n-1].Seq
				}
			}
		}
	}
	if !resumed {
		snap := st.progress()
		if snap.Complete {
			writeSSE(w, flusher, "done", snap)
			return
		}
		writeSSE(w, flusher, "progress", snap)
		seen = snap.Seq
	}
	for {
		select {
		case u := <-updates:
			if u.Complete {
				writeSSE(w, flusher, "done", u)
				return
			}
			if u.Seq > seen {
				writeSSE(w, flusher, "progress", u)
				seen = u.Seq
			}
		case <-st.finished:
			// Drain any update that raced the latch, then close out.
			for {
				select {
				case u := <-updates:
					if u.Complete {
						writeSSE(w, flusher, "done", u)
						return
					}
					if u.Seq > seen {
						writeSSE(w, flusher, "progress", u)
						seen = u.Seq
					}
				default:
					writeSSE(w, flusher, "done", st.progress())
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event; broadcast updates (Seq > 0) carry an `id:`
// line so clients can resume via Last-Event-ID.
func writeSSE(w http.ResponseWriter, flusher http.Flusher, event string, u runUpdate) {
	data, err := json.Marshal(u)
	if err != nil {
		return
	}
	if u.Seq > 0 {
		fmt.Fprintf(w, "id: %d\n", u.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	flusher.Flush()
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Refresh process-level and platform gauges at scrape time.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("wbserve_goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("wbserve_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	depth := s.queue.Depth()
	for tn, n := range s.queue.DepthByTenant() {
		s.reg.Gauge(metrics.Label("wbserve_tenant_pending", "tenant", tn)).Set(float64(n))
	}
	// The autoscaling hint: how many extra `wbserve -worker` processes the
	// backlog justifies, assuming each absorbs autoscaleJobsPerWorker jobs.
	s.reg.Gauge("wbserve_autoscale_workers_hint").
		Set(float64((depth + autoscaleJobsPerWorker - 1) / autoscaleJobsPerWorker))
	_, diskBytes, memEntries := s.store.Stats()
	s.reg.Gauge("wbserve_cache_entries").Set(float64(memEntries))
	s.reg.Gauge("wbserve_store_bytes").Set(float64(diskBytes))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
