package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/machconf"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunRequest is the JSON body of POST /run.  Zero-valued fields take the
// paper's baseline (Tables 1 and 2), mirroring the wbsim flag defaults, so
// {"bench":"li"} is a complete request.
type RunRequest struct {
	// Bench names a benchmark from the suite (wbsim -list); required.
	Bench string `json:"bench"`
	// N is the dynamic instruction count (default one million).  The
	// first quarter is warm-up and excluded from the measurement.
	N uint64 `json:"n,omitempty"`
	// Depth and Width shape the write buffer (entries × words per entry).
	Depth int `json:"depth,omitempty"`
	Width int `json:"width,omitempty"`
	// RetireAt is the retire-at high-water mark; AgingTimeout adds the
	// aging clause (cycles, 0 = off).
	RetireAt     int    `json:"retire_at,omitempty"`
	AgingTimeout uint64 `json:"aging_timeout,omitempty"`
	// Hazard is the load-hazard policy: flush-full, flush-partial,
	// flush-item-only, or read-from-WB.
	Hazard string `json:"hazard,omitempty"`
	// L1Size, L2Lat, L2Size, MemLat configure the hierarchy; L2Size 0 is
	// the paper's perfect L2.
	L1Size int    `json:"l1_size,omitempty"`
	L2Lat  uint64 `json:"l2_lat,omitempty"`
	L2Size int    `json:"l2_size,omitempty"`
	MemLat uint64 `json:"mem_lat,omitempty"`
	// WriteCache, when > 0, swaps the write buffer for a write cache of
	// that depth; IssueWidth > 1 enables the superscalar extension.
	WriteCache int `json:"write_cache,omitempty"`
	IssueWidth int `json:"issue_width,omitempty"`
	// Config, when present, is a complete machconf machine description (as
	// produced by wbsim -dump-config or machconf.Encode).  It replaces
	// every machine-shaping scalar above — mixing the two is an error —
	// and is the only way to request a registry-registered custom policy.
	Config json.RawMessage `json:"config,omitempty"`
}

// hasScalarConfig reports whether any machine-shaping scalar field was set.
func (r RunRequest) hasScalarConfig() bool {
	return r.Depth != 0 || r.Width != 0 || r.RetireAt != 0 || r.AgingTimeout != 0 ||
		r.Hazard != "" || r.L1Size != 0 || r.L2Lat != 0 || r.L2Size != 0 ||
		r.MemLat != 0 || r.WriteCache != 0 || r.IssueWidth != 0
}

// normalize fills baseline defaults so equivalent requests share one cache
// key, and validates ranges the simulator cannot (the instruction cap).
func (r RunRequest) normalize(maxN uint64) (RunRequest, error) {
	if r.Bench == "" {
		return r, fmt.Errorf("missing required field %q", "bench")
	}
	if r.N == 0 {
		r.N = 1_000_000
	}
	if r.N > maxN {
		return r, fmt.Errorf("n %d exceeds the server cap of %d", r.N, maxN)
	}
	if len(r.Config) > 0 {
		if r.hasScalarConfig() {
			return r, fmt.Errorf("config blob and machine fields are mutually exclusive")
		}
		return r, nil
	}
	if r.Depth == 0 {
		r.Depth = 4
	}
	if r.Width == 0 {
		r.Width = 4
	}
	if r.RetireAt == 0 {
		r.RetireAt = 2
	}
	if r.Hazard == "" {
		r.Hazard = core.FlushFull.String()
	}
	if r.L1Size == 0 {
		r.L1Size = 8 << 10
	}
	if r.L2Lat == 0 {
		r.L2Lat = 6
	}
	if r.MemLat == 0 {
		r.MemLat = 25
	}
	return r, nil
}

// errInvalidConfig marks a request whose JSON was well-formed but whose
// machine fails sim.Config.Validate — the client described an impossible
// configuration, so /run answers 422, not 400 (malformed request) or 500
// (server fault).
var errInvalidConfig = errors.New("invalid machine configuration")

// config builds the simulator configuration — decoding the machconf blob
// when one was sent, assembling the scalars otherwise — and relies on
// machconf.Validate for the microarchitectural invariants; validation
// failures are wrapped in errInvalidConfig.
func (r RunRequest) config() (sim.Config, error) {
	if len(r.Config) > 0 {
		cfg, err := machconf.Decode(r.Config)
		if err != nil {
			return sim.Config{}, err
		}
		if err := machconf.Validate(cfg); err != nil {
			return sim.Config{}, fmt.Errorf("%w: %v", errInvalidConfig, err)
		}
		return cfg, nil
	}
	hazard, ok := machconf.HazardByName(r.Hazard)
	if !ok {
		return sim.Config{}, fmt.Errorf("unknown hazard policy %q", r.Hazard)
	}
	cfg := sim.Baseline().
		WithDepth(r.Depth).
		WithRetire(core.RetireAt{N: r.RetireAt, Timeout: r.AgingTimeout}).
		WithHazard(hazard).
		WithL1Size(r.L1Size).
		WithL2Latency(r.L2Lat).
		WithMemLat(r.MemLat).
		WithIssueWidth(r.IssueWidth)
	cfg.WB.WordsPerEntry = r.Width
	if r.L2Size > 0 {
		cfg = cfg.WithL2(r.L2Size)
	}
	if r.WriteCache > 0 {
		cfg = cfg.WithWriteCache(r.WriteCache)
	}
	if err := machconf.Validate(cfg); err != nil {
		return sim.Config{}, fmt.Errorf("%w: %v", errInvalidConfig, err)
	}
	return cfg, nil
}

// label renders the request as a compact descriptor: the non-baseline
// scalars, or the canonical hash prefix when the machine arrived as a blob.
func (r RunRequest) label(hash string) string {
	if len(r.Config) > 0 {
		return "machconf:" + hash[:12]
	}
	return fmt.Sprintf("depth=%d,width=%d,retire=%d,hazard=%s", r.Depth, r.Width, r.RetireAt, r.Hazard)
}

// cacheKey is the LRU key: benchmark, instruction count, and the machine's
// canonical machconf hash.  A scalar request and a canonical blob that
// describe the same machine share one entry.
func cacheKey(bench string, n uint64, hash string) string {
	return fmt.Sprintf("%s|%d|%s", bench, n, hash)
}

// RunResponse is the JSON reply of POST /run: the paper's measurement for
// one (benchmark, configuration) pair.
type RunResponse struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	// Instructions and Cycles cover the measured (post-warm-up) window.
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	CPI          float64 `json:"cpi"`
	// StallPct carries the paper's headline metric per category plus the
	// total, as a percentage of execution time.
	StallPct  map[string]float64 `json:"stall_pct"`
	L1HitRate float64            `json:"l1_hit_rate"`
	WBHitRate float64            `json:"wb_hit_rate"`
	L2HitRate float64            `json:"l2_hit_rate"`
	Loads     uint64             `json:"loads"`
	Stores    uint64             `json:"stores"`
	// Retirements vs FlushedEntries splits L2 write traffic into
	// autonomous drains and hazard-forced flushes.
	Retirements    uint64 `json:"retirements"`
	FlushedEntries uint64 `json:"flushed_entries"`
	WBReadHits     uint64 `json:"wb_read_hits"`
	HazardEvents   uint64 `json:"hazard_events"`
	// Cached reports whether the measurement came from the LRU cache.
	Cached bool `json:"cached"`
}

func responseFrom(m experiment.Measurement) *RunResponse {
	c := m.C
	stall := map[string]float64{"total": c.TotalStallPct()}
	for k := range c.Stalls {
		kind := stats.StallKind(k)
		if c.Stalls[k] > 0 || kind <= stats.LoadHazard {
			stall[kind.String()] = c.StallPct(kind)
		}
	}
	return &RunResponse{
		Bench:          m.Bench,
		Config:         m.Label,
		Instructions:   c.Instructions,
		Cycles:         c.Cycles,
		CPI:            c.CPI(),
		StallPct:       stall,
		L1HitRate:      m.L1Hit,
		WBHitRate:      m.WBHit,
		L2HitRate:      m.L2Hit,
		Loads:          c.Loads,
		Stores:         c.Stores,
		Retirements:    c.Retirements,
		FlushedEntries: c.FlushedEntries,
		WBReadHits:     c.WBReadHits,
		HazardEvents:   c.HazardEvents,
	}
}

// server ties the HTTP surface to the experiment harness: a bounded LRU
// over measurements, a shared metrics registry, and a readiness state
// that sequences graceful shutdown (drain begins → /healthz flips to 503
// so dispatchers stop routing here → new work is refused → in-flight
// requests finish under http.Server.Shutdown).
type server struct {
	cache    *lruCache
	reg      *metrics.Registry
	maxN     uint64
	worker   bool
	ready    *dispatch.Readiness
	inflight atomic.Int64
}

func newServer(cacheSize int, maxN uint64, worker bool) *server {
	s := &server{
		cache:  newLRU(cacheSize),
		reg:    metrics.NewRegistry(),
		maxN:   maxN,
		worker: worker,
		ready:  dispatch.NewReadiness(),
	}
	// Construction is cheap and the process serves nothing until the
	// listener is up, so the server is born ready; main flips it to
	// draining on SIGINT/SIGTERM.
	s.ready.SetReady()
	return s
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.instrument("/experiments", s.handleExperiments))
	mux.HandleFunc("POST /run", s.instrument("/run", s.refuseWhenDraining(s.handleRun)))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Readiness, not liveness: a draining (or starting) process
		// answers 503 so load balancers and the dispatch re-prober route
		// around it, with the state name as the body for operators.
		if !s.ready.IsReady() {
			http.Error(w, s.ready.State(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	if s.worker {
		// The sweep-worker surface: POST /job runs one wire-encoded
		// matrix job for a dispatch.Remote coordinator, feeding the same
		// registry /metrics exports.  The shared readiness state makes
		// the worker refuse jobs (503 → dispatcher retries elsewhere)
		// once draining begins.
		jobs := dispatch.WorkerHandlerState(s.reg, s.ready)
		mux.Handle("POST /job", s.instrument("/job", jobs.ServeHTTP))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// refuseWhenDraining gates a work-accepting endpoint on readiness: during
// shutdown, in-flight requests finish but new work gets an immediate 503
// (transient, safe to retry elsewhere) instead of racing the listener.
func (s *server) refuseWhenDraining(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.IsReady() {
			httpError(w, http.StatusServiceUnavailable, "server is %s", s.ready.State())
			return
		}
		h(w, r)
	}
}

// instrument wraps a handler with request counting, latency tracking, and
// the shared in-flight gauge.
func (s *server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.Counter(metrics.Label("wbserve_requests_total", "path", path))
	latency := s.reg.Histogram(metrics.Label("wbserve_request_microseconds", "path", path))
	inflight := s.reg.Gauge("wbserve_inflight_requests")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		inflight.Set(float64(s.inflight.Add(1)))
		defer func() {
			inflight.Set(float64(s.inflight.Add(-1)))
			latency.Observe(uint64(time.Since(start).Microseconds()))
		}()
		h(w, r)
	}
}

func (s *server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []item
	for _, e := range experiment.All() {
		out = append(out, item{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	req, err := req.normalize(s.maxN)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	b, ok := workload.ByName(req.Bench)
	if !ok {
		for _, t := range workload.Transformed() {
			if t.Name == req.Bench {
				b, ok = t, true
				break
			}
		}
	}
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown benchmark %q", req.Bench)
		return
	}
	cfg, err := req.config()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errInvalidConfig) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, "%v", err)
		return
	}

	hash, err := machconf.Hash(cfg)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	key := cacheKey(req.Bench, req.N, hash)
	if cached, ok := s.cache.get(key); ok {
		s.reg.Counter("wbserve_cache_hits_total").Inc()
		resp := *cached
		resp.Cached = true
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	s.reg.Counter("wbserve_cache_misses_total").Inc()
	matrix := experiment.RunMatrixOpts(
		[]workload.Benchmark{b},
		[]experiment.ConfigSpec{{Label: req.label(hash), Cfg: cfg}},
		experiment.Options{Instructions: req.N, Metrics: s.reg},
	)
	resp := responseFrom(matrix[0][0])
	s.cache.put(key, resp)
	s.reg.Gauge("wbserve_cache_entries").Set(float64(s.cache.len()))
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Refresh process-level gauges at scrape time.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("wbserve_goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("wbserve_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
