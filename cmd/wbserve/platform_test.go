package main

import (
	"bufio"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/jobqueue"
	"repro/internal/machconf"
	"repro/internal/resultstore"
	"repro/internal/sim"
	"repro/internal/tenant"
)

// postRunTenant is postRun with an X-WB-Tenant header.
func postRunTenant(t *testing.T, ts *httptest.Server, tenantName, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantName != "" {
		req.Header.Set("X-WB-Tenant", tenantName)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeRunView(t *testing.T, r io.Reader) runView {
	t.Helper()
	var v runView
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitComplete polls GET /run/{id} until the run document reports complete.
func waitComplete(t *testing.T, ts *httptest.Server, id string) runView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/run/" + id)
		if err != nil {
			t.Fatal(err)
		}
		v := decodeRunView(t, resp.Body)
		resp.Body.Close()
		if v.Complete {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never completed: %d/%d done", id, v.Done, v.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAsyncSweepSSE drives the tentpole end to end: a multi-benchmark async
// sweep is accepted with 202 and a run id, its ETA/MIPS progress streams
// over SSE through to a final done event, and the completed run document
// carries a result per job matching direct execution.
func TestAsyncSweepSSE(t *testing.T) {
	_, ts := testServer(t)
	resp := postRunTenant(t, ts, "sse-client", `{"benches":["li","compress","espresso"],"n":100000,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d, want 202", resp.StatusCode)
	}
	v := decodeRunView(t, resp.Body)
	if v.ID == "" || v.Total != 3 || v.Tenant != "sse-client" {
		t.Fatalf("run document %+v", v)
	}
	if v.EventsURL != "/run/"+v.ID+"/events" {
		t.Errorf("events_url = %q", v.EventsURL)
	}

	// Attach to the SSE stream and read through to the done event.  The
	// stream may open at any point of the run, so the only invariants are
	// monotone done counts and a final done event with done == total.
	sse, err := http.Get(ts.URL + v.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var (
		events  []string
		updates []runUpdate
	)
	sc := bufio.NewScanner(sse.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var u runUpdate
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &u); err != nil {
				t.Fatalf("unparsable SSE data %q: %v", line, err)
			}
			events = append(events, event)
			updates = append(updates, u)
		}
		if event == "done" && len(updates) > 0 && updates[len(updates)-1].Complete {
			break
		}
	}
	if len(updates) == 0 {
		t.Fatal("SSE stream delivered no events")
	}
	last := updates[len(updates)-1]
	if events[len(events)-1] != "done" || !last.Complete || last.Done != 3 || last.Total != 3 {
		t.Fatalf("final SSE event %q %+v, want done with 3/3", events[len(events)-1], last)
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].Done < updates[i-1].Done {
			t.Errorf("SSE done counts went backwards: %d after %d", updates[i].Done, updates[i-1].Done)
		}
	}
	for _, u := range updates[1:] { // catch-up snapshot may predate any finished job
		if u.RunID != v.ID {
			t.Errorf("SSE update for run %q, want %q", u.RunID, v.ID)
		}
	}

	// The completed document holds one result per job, byte-for-byte what a
	// direct execution produces.
	final := waitComplete(t, ts, v.ID)
	if len(final.Results) != 3 {
		t.Fatalf("results length %d, want 3", len(final.Results))
	}
	for i, job := range final.Jobs {
		if !job.Done {
			t.Errorf("job %d (%s) not done in a complete run", i, job.Bench)
		}
		r := final.Results[i]
		if r == nil {
			t.Fatalf("job %d (%s) has no result", i, job.Bench)
		}
		want, err := dispatch.Execute(dispatch.Job{Bench: job.Bench, Cfg: sim.Baseline(), N: 100_000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Instructions != want.C.Instructions || r.Cycles != want.C.Cycles {
			t.Errorf("%s: served (%d instr, %d cyc) differs from direct execution (%d, %d)",
				job.Bench, r.Instructions, r.Cycles, want.C.Instructions, want.C.Cycles)
		}
	}
}

// TestSweepIdempotentResubmission pins the content-addressed run identity:
// an identical sweep resubmitted (client retry, replay after a crash)
// converges on the same run id instead of duplicating work.
func TestSweepIdempotentResubmission(t *testing.T) {
	s, ts := testServer(t)
	body := `{"benches":["li","compress"],"n":100000,"async":true}`
	first := decodeRunView(t, postRunTenant(t, ts, "retrier", body).Body)
	second := decodeRunView(t, postRunTenant(t, ts, "retrier", body).Body)
	if first.ID != second.ID {
		t.Fatalf("identical sweeps got distinct run ids %q and %q", first.ID, second.ID)
	}
	waitComplete(t, ts, first.ID)
	// Two submissions, two jobs: dedup means at most 2 executions (the
	// second submission's jobs were pending or already stored).
	if n := s.reg.Counter("dispatch_store_misses_total").Value(); n > 2 {
		t.Errorf("resubmitted sweep simulated %d jobs, want <= 2", n)
	}
	// A different tenant asking for the same jobs gets its own run id (runs
	// are tenant-scoped) but free results via the shared store.
	third := decodeRunView(t, postRunTenant(t, ts, "freerider", body).Body)
	if third.ID == first.ID {
		t.Error("distinct tenants share a run id")
	}
	final := waitComplete(t, ts, third.ID)
	if !final.Complete || final.Results[0] == nil {
		t.Errorf("cross-tenant run incomplete: %+v", final)
	}
}

// TestPlatformRestart is the in-process kill -9 acceptance check: a durable
// sweep completes, the process "dies" (server closed), a fresh process over
// the same store+queue serves the identical run document byte-for-byte and
// answers a repeat sweep with zero new simulations, metrics-asserted.
func TestPlatformRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := serverConfig{
		CacheSize: 8,
		MaxN:      5_000_000,
		StoreDir:  dir + "/store",
		QueuePath: dir + "/queue.jsonl",
	}
	body := `{"benches":["li","compress"],"n":100000,"async":true}`

	s1, ts1 := testServerCfg(t, cfg)
	v := decodeRunView(t, postRunTenant(t, ts1, "", body).Body)
	waitComplete(t, ts1, v.ID)
	doc1, err := http.Get(ts1.URL + "/run/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	bytes1, _ := io.ReadAll(doc1.Body)
	doc1.Body.Close()
	ts1.Close()
	s1.Close()

	// "Restart": a second server over the same directories.
	s2, ts2 := testServerCfg(t, cfg)
	doc2, err := http.Get(ts2.URL + "/run/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.StatusCode != http.StatusOK {
		t.Fatalf("run document lost across restart: status %d", doc2.StatusCode)
	}
	bytes2, _ := io.ReadAll(doc2.Body)
	doc2.Body.Close()
	if string(bytes1) != string(bytes2) {
		t.Errorf("run document changed across restart:\n before: %s\n after:  %s", bytes1, bytes2)
	}

	// The identical sweep resubmitted to the new process: every job is in
	// the store, so zero simulations dispatch.
	v2 := decodeRunView(t, postRunTenant(t, ts2, "", body).Body)
	if v2.ID != v.ID {
		t.Errorf("run id changed across restart: %q vs %q", v2.ID, v.ID)
	}
	final := waitComplete(t, ts2, v2.ID)
	if !final.Complete {
		t.Fatal("resubmitted run incomplete")
	}
	if n := s2.reg.Counter("dispatch_store_misses_total").Value(); n != 0 {
		t.Errorf("restarted process dispatched %d simulations, want 0", n)
	}
	// Synchronous single-job requests also answer from the durable tier.
	resp, out := postRun(t, ts2, `{"bench":"li","n":100000}`)
	if resp.StatusCode != http.StatusOK || !out.Cached {
		t.Errorf("restart: single-job request status %d cached %v, want 200 cached", resp.StatusCode, out.Cached)
	}
}

// TestQueueResumeMidFlight simulates dying with work in the queue: a
// journal holding a submitted run with no done markers (what a kill -9
// mid-sweep leaves behind) must drain to completion on the next start.
func TestQueueResumeMidFlight(t *testing.T) {
	dir := t.TempDir()
	storeDir, queuePath := dir+"/store", dir+"/queue.jsonl"

	cfg := sim.Baseline()
	hash, err := machconf.Hash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := machconf.Encode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []jobqueue.Job
	for _, bench := range []string{"li", "compress"} {
		jobs = append(jobs, jobqueue.Job{
			Bench: bench, Label: "resumed", N: 100_000, Config: blob,
			Key: resultstore.Key(bench, 100_000, hash), Tenant: "crashed",
		})
	}
	run := jobqueue.Run{ID: runID("crashed", jobs), Tenant: "crashed", Jobs: jobs}
	q, err := jobqueue.Open(queuePath, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(run, nil); err != nil {
		t.Fatal(err)
	}
	q.Close() // the "crash": submitted, nothing done

	s, ts := testServerCfg(t, serverConfig{
		CacheSize: 8, MaxN: 5_000_000, StoreDir: storeDir, QueuePath: queuePath,
	})
	final := waitComplete(t, ts, run.ID)
	if len(final.Results) != 2 || final.Results[0] == nil || final.Results[1] == nil {
		t.Fatalf("resumed run missing results: %+v", final)
	}
	want, err := dispatch.Execute(dispatch.Job{Bench: "li", Cfg: cfg, N: 100_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Results[0].Cycles != want.C.Cycles {
		t.Errorf("resumed result differs from direct execution: %d vs %d cycles",
			final.Results[0].Cycles, want.C.Cycles)
	}
	if n := s.reg.Counter("wbserve_dispatched_jobs_total").Value(); n != 2 {
		t.Errorf("resume dispatched %d jobs, want 2", n)
	}
}

// TestTenantRateLimit pins the token-bucket 429 path and its metrics.
func TestTenantRateLimit(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		CacheSize: 4, MaxN: 5_000_000,
		TenantOverrides: map[string]tenant.Limits{
			"slow": {Rate: 0.0001, Burst: 1},
		},
	})
	if resp := postRunTenant(t, ts, "slow", `{"bench":"li","n":100000}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request within burst: status %d", resp.StatusCode)
	}
	resp := postRunTenant(t, ts, "slow", `{"bench":"li","n":100000}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Unlimited default tenants are unaffected by one tenant's dry bucket.
	if resp := postRunTenant(t, ts, "", `{"bench":"li","n":100000}`); resp.StatusCode != http.StatusOK {
		t.Errorf("default tenant throttled by another tenant's limit: status %d", resp.StatusCode)
	}
	if n := s.reg.Counter(`tenant_throttled_total{tenant="slow"}`).Value(); n != 1 {
		t.Errorf("tenant_throttled_total{slow} = %d, want 1", n)
	}
}

// TestTenantPendingQuota pins the pending-work quota 429 path.
func TestTenantPendingQuota(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		CacheSize: 4, MaxN: 5_000_000,
		TenantOverrides: map[string]tenant.Limits{
			"small": {MaxPending: 2},
		},
	})
	resp := postRunTenant(t, ts, "small", `{"benches":["li","compress","espresso"],"n":100000,"async":true}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3 jobs against quota 2: status %d, want 429", resp.StatusCode)
	}
	if n := s.reg.Counter(`tenant_quota_rejections_total{tenant="small"}`).Value(); n != 1 {
		t.Errorf("tenant_quota_rejections_total{small} = %d, want 1", n)
	}
	// Within quota proceeds.
	resp = postRunTenant(t, ts, "small", `{"benches":["li","compress"],"n":100000,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("2 jobs against quota 2: status %d, want 202", resp.StatusCode)
	}
}

// TestRunStatusNotFound covers the 404 surface of the run registry.
func TestRunStatusNotFound(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/run/doesnotexist", "/run/doesnotexist/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestSweepRequestValidation covers the new multi-bench request shapes.
func TestSweepRequestValidation(t *testing.T) {
	_, ts := testServer(t)
	for name, body := range map[string]string{
		"bench and benches":   `{"bench":"li","benches":["compress"]}`,
		"duplicate benches":   `{"benches":["li","li"]}`,
		"empty bench in list": `{"benches":["li",""]}`,
		"unknown in list":     `{"benches":["li","nosuch"]}`,
	} {
		resp := postRunTenant(t, ts, "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// A synchronous multi-bench sweep answers with the run document.
	resp := postRunTenant(t, ts, "", `{"benches":["li","compress"],"n":100000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync sweep: status %d", resp.StatusCode)
	}
	v := decodeRunView(t, resp.Body)
	if !v.Complete || len(v.Results) != 2 || v.Results[0] == nil {
		t.Errorf("sync sweep document incomplete: %+v", v)
	}
}

// readSSE consumes one SSE stream until a done event (or EOF), returning
// the event names, their ids (0 when absent), and the decoded updates.
func readSSE(t *testing.T, body io.Reader) (events []string, ids []uint64, updates []runUpdate) {
	t.Helper()
	sc := bufio.NewScanner(body)
	event, id := "", uint64(0)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("unparsable SSE id %q: %v", line, err)
			}
			id = n
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var u runUpdate
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &u); err != nil {
				t.Fatalf("unparsable SSE data %q: %v", line, err)
			}
			events, ids, updates = append(events, event), append(ids, id), append(updates, u)
			id = 0
		}
		if event == "done" && len(updates) > 0 && updates[len(updates)-1].Complete {
			return events, ids, updates
		}
	}
	return events, ids, updates
}

// getEvents attaches to a run's SSE stream, optionally resuming from a
// Last-Event-ID, and reads it through to the done event.
func getEvents(t *testing.T, ts *httptest.Server, id, lastEventID string) ([]string, []uint64, []runUpdate) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/run/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return readSSE(t, resp.Body)
}

// TestSSEResumeLastEventID pins the reconnect contract: every broadcast
// carries its sequence number as the SSE id, and a client that presents
// one back as Last-Event-ID receives exactly the completions after it —
// no snapshot, no duplicates, no gaps — through to the done event.
func TestSSEResumeLastEventID(t *testing.T) {
	_, ts := testServer(t)
	resp := postRunTenant(t, ts, "resume-client", `{"benches":["li","compress","espresso","sc"],"n":100000,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d, want 202", resp.StatusCode)
	}
	v := decodeRunView(t, resp.Body)
	waitComplete(t, ts, v.ID)

	// A full replay from the stream's origin: four completions, ids 1..4,
	// the last of them the done event.
	events, ids, updates := getEvents(t, ts, v.ID, "0")
	if len(updates) != 4 {
		t.Fatalf("replay from 0 delivered %d events (%v), want 4", len(updates), events)
	}
	for i, u := range updates {
		want := uint64(i + 1)
		if ids[i] != want || u.Seq != want {
			t.Errorf("event %d: id=%d seq=%d, want %d", i, ids[i], u.Seq, want)
		}
		if u.Done != i+1 {
			t.Errorf("event %d: done=%d, want %d", i, u.Done, i+1)
		}
	}
	if events[3] != "done" || !updates[3].Complete {
		t.Fatalf("final replayed event %q %+v, want done", events[3], updates[3])
	}

	// A mid-stream resume skips exactly the acknowledged prefix.
	events, ids, updates = getEvents(t, ts, v.ID, "2")
	if len(updates) != 2 || ids[0] != 3 || ids[1] != 4 || events[1] != "done" {
		t.Fatalf("resume from 2: events=%v ids=%v, want ids 3,4 ending in done", events, ids)
	}

	// An id beyond the retained history (a restarted server, a bogus
	// client) falls back to the catch-up snapshot — here the done event.
	events, _, updates = getEvents(t, ts, v.ID, "9999")
	if len(updates) != 1 || events[0] != "done" || !updates[0].Complete {
		t.Fatalf("resync fallback: events=%v updates=%+v, want a single done snapshot", events, updates)
	}

	// A fresh attach (no header) still gets the snapshot path.
	events, _, updates = getEvents(t, ts, v.ID, "")
	if len(updates) != 1 || events[0] != "done" || updates[0].Done != 4 {
		t.Fatalf("fresh attach to complete run: events=%v updates=%+v", events, updates)
	}
}
