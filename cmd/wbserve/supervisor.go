package main

// Worker supervision: `wbserve -supervise` finally acts on the autoscale
// hint instead of just publishing it.  The supervisor owns a fixed set of
// worker slots (one local `wbserve -worker` subprocess address each,
// preassigned so the dispatch pool's membership never changes) and, on
// every tick, reconciles how many slots are running against what the
// queue backlog justifies:
//
//	desired = clamp(ceil(depth / autoscaleJobsPerWorker), min, max)
//
// Scale-up spawns subprocesses; the dispatch layer's health probes notice
// them coming ready.  Scale-down sends SIGTERM, which the worker's own
// readiness machinery turns into a graceful drain (healthz flips 503, the
// dispatcher routes around it, in-flight jobs finish).  A worker that
// exits without being asked is a crash: it is restarted with exponential
// backoff per slot, and the backoff resets once a replacement survives.
// Between crash and restart, jobs route to the surviving workers — or,
// with every slot down, fall back to in-process execution — so the sweep
// never stalls on supervision.
import (
	"math"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/metrics"
)

// supervisorConfig assembles a supervisor.
type supervisorConfig struct {
	// Min and Max bound the running worker count; desired is clamped into
	// [Min, Max] every tick.
	Min, Max int
	// Addrs are the preassigned worker addresses, one per slot; len(Addrs)
	// must be Max.
	Addrs []string
	// Spawn builds (but does not start) the subprocess for one worker
	// address.
	Spawn func(addr string) *exec.Cmd
	// Depth reports the queue backlog the scaling decision divides.
	Depth func() int
	// Interval is the reconcile period.
	Interval time.Duration
	// Backoff bounds: first restart after BaseBackoff, doubling per
	// consecutive crash up to MaxBackoff.
	BaseBackoff, MaxBackoff time.Duration

	Metrics *metrics.Registry
	Logf    func(format string, args ...any)
}

// slot is one worker position: an address, at most one live subprocess,
// and its crash-backoff state.
type slot struct {
	addr      string
	cmd       *exec.Cmd
	stopping  bool      // we sent SIGTERM; the exit is expected
	failures  int       // consecutive crashes
	notBefore time.Time // backoff gate for the next spawn
}

type supervisor struct {
	cfg   supervisorConfig
	clock func() time.Time // test hook

	mu    sync.Mutex
	slots []*slot

	workers  *metrics.Gauge   // running subprocesses
	desired  *metrics.Gauge   // what the last tick wanted
	spawns   *metrics.Counter // subprocesses started
	restarts *metrics.Counter // spawns that replaced a crash
	crashes  *metrics.Counter // unexpected exits

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// newSupervisor builds and starts the reconcile loop.
func newSupervisor(cfg supervisorConfig) *supervisor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	sup := &supervisor{
		cfg:      cfg,
		clock:    time.Now,
		workers:  reg.Gauge("wbserve_supervisor_workers"),
		desired:  reg.Gauge("wbserve_supervisor_desired_workers"),
		spawns:   reg.Counter("wbserve_supervisor_spawns_total"),
		restarts: reg.Counter("wbserve_supervisor_restarts_total"),
		crashes:  reg.Counter("wbserve_supervisor_crashes_total"),
		done:     make(chan struct{}),
	}
	for _, addr := range cfg.Addrs {
		sup.slots = append(sup.slots, &slot{addr: addr})
	}
	sup.wg.Add(1)
	go sup.loop()
	return sup
}

func (sup *supervisor) loop() {
	defer sup.wg.Done()
	sup.reconcile()
	t := time.NewTicker(sup.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-sup.done:
			return
		case <-t.C:
			sup.reconcile()
		}
	}
}

// desiredCount is the scaling decision: the backlog divided by what one
// worker absorbs, clamped into [min, max].
func (sup *supervisor) desiredCount() int {
	d := int(math.Ceil(float64(sup.cfg.Depth()) / autoscaleJobsPerWorker))
	if d < sup.cfg.Min {
		d = sup.cfg.Min
	}
	if d > sup.cfg.Max {
		d = sup.cfg.Max
	}
	return d
}

// reconcile drives the slot set toward the desired count: the first
// `desired` slots should be running, the rest draining.
func (sup *supervisor) reconcile() {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	select {
	case <-sup.done:
		return // shutting down: never spawn into a teardown
	default:
	}
	want := sup.desiredCount()
	sup.desired.Set(float64(want))
	now := sup.clock()
	for i, sl := range sup.slots {
		switch {
		case i < want && sl.cmd == nil && !now.Before(sl.notBefore):
			sup.spawnLocked(sl)
		case i >= want && sl.cmd != nil && !sl.stopping:
			sup.cfg.Logf("wbserve: supervisor draining worker %s (backlog shrank)", sl.addr)
			sl.stopping = true
			_ = sl.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	sup.workers.Set(float64(sup.runningLocked()))
}

func (sup *supervisor) runningLocked() int {
	n := 0
	for _, sl := range sup.slots {
		if sl.cmd != nil {
			n++
		}
	}
	return n
}

// spawnLocked starts one worker subprocess and its reaper.  Callers hold mu.
func (sup *supervisor) spawnLocked(sl *slot) {
	cmd := sup.cfg.Spawn(sl.addr)
	if err := cmd.Start(); err != nil {
		sup.cfg.Logf("wbserve: supervisor failed to start worker %s: %v", sl.addr, err)
		sl.failures++
		sl.notBefore = sup.clock().Add(sup.backoff(sl.failures))
		return
	}
	sl.cmd = cmd
	sl.stopping = false
	if sl.failures > 0 {
		sup.restarts.Inc()
	}
	sup.spawns.Inc()
	sup.cfg.Logf("wbserve: supervisor started worker %s (pid %d)", sl.addr, cmd.Process.Pid)
	sup.wg.Add(1)
	go sup.reap(sl, cmd)
}

// reap waits for one subprocess and classifies its exit: expected (we
// asked it to drain — backoff state resets) or a crash (backoff grows, the
// next reconcile restarts it).
func (sup *supervisor) reap(sl *slot, cmd *exec.Cmd) {
	defer sup.wg.Done()
	err := cmd.Wait()
	sup.mu.Lock()
	defer sup.mu.Unlock()
	if sl.cmd != cmd {
		return // slot was already reassigned
	}
	sl.cmd = nil
	if sl.stopping {
		sl.stopping = false
		sl.failures = 0
		sl.notBefore = time.Time{}
		sup.cfg.Logf("wbserve: supervisor worker %s drained and exited", sl.addr)
	} else {
		sl.failures++
		sl.notBefore = sup.clock().Add(sup.backoff(sl.failures))
		sup.crashes.Inc()
		sup.cfg.Logf("wbserve: supervisor worker %s crashed (%v), restart after %v (failure %d)",
			sl.addr, err, sup.backoff(sl.failures), sl.failures)
	}
	sup.workers.Set(float64(sup.runningLocked()))
}

// backoff is the restart delay after n consecutive crashes.
func (sup *supervisor) backoff(n int) time.Duration {
	d := sup.cfg.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= sup.cfg.MaxBackoff {
			return sup.cfg.MaxBackoff
		}
	}
	if d > sup.cfg.MaxBackoff {
		d = sup.cfg.MaxBackoff
	}
	return d
}

// Stop ends the reconcile loop, SIGTERMs every worker (graceful drain
// through the worker's own readiness states), escalates to SIGKILL after
// the grace period, and waits for every reaper.
func (sup *supervisor) Stop(grace time.Duration) {
	sup.closeOnce.Do(func() { close(sup.done) })

	sup.mu.Lock()
	for _, sl := range sup.slots {
		if sl.cmd != nil {
			sl.stopping = true
			_ = sl.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	sup.mu.Unlock()

	deadline := time.After(grace)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		sup.mu.Lock()
		n := sup.runningLocked()
		sup.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-deadline:
			sup.mu.Lock()
			for _, sl := range sup.slots {
				if sl.cmd != nil {
					sup.cfg.Logf("wbserve: supervisor killing worker %s (drain deadline exceeded)", sl.addr)
					_ = sl.cmd.Process.Kill()
				}
			}
			sup.mu.Unlock()
		case <-tick.C:
			continue
		}
		break
	}
	sup.wg.Wait()
}

// Workers reports the running subprocess count (tests and logs).
func (sup *supervisor) Workers() int {
	sup.mu.Lock()
	defer sup.mu.Unlock()
	return sup.runningLocked()
}
