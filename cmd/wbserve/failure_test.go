package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/dispatch"
)

// failBackend fails every job — the injected stand-in for config skew or a
// dead worker pool (local execution cannot fail for an admitted config, so
// the dispatcher's failure path is unreachable without this seam).
type failBackend struct{}

func (failBackend) Run(context.Context, dispatch.Job) (dispatch.Measurement, error) {
	return dispatch.Measurement{}, errors.New("injected: backend down")
}

// unstoredBackend executes through the real store-backed backend but reports
// the result as not durably stored — the contract Cached.Run exposes when
// the disk rejects the Put while the measurement is already in hand.
type unstoredBackend struct{ inner dispatch.Backend }

func (b unstoredBackend) Run(ctx context.Context, job dispatch.Job) (dispatch.Measurement, error) {
	m, err := b.inner.Run(ctx, job)
	if err != nil {
		return m, err
	}
	return m, fmt.Errorf("%w: injected", dispatch.ErrResultNotStored)
}

// getRunDoc fetches and decodes GET /run/{id}.
func getRunDoc(t *testing.T, url string) runView {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var doc runView
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// A failed job must never be recorded as completed: the run document shows
// it failed (complete stays false), the journal holds no done marker, and a
// synchronous request answers 500 rather than fabricating a result.
func TestJobFailureKeepsLedgerHonest(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		CacheSize: 4, MaxN: 5_000_000,
		testBackend: func(dispatch.Backend) dispatch.Backend { return failBackend{} },
	})

	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"bench":"li","n":100000,"async":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var doc runView
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST /run: status %d, want 202", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The failure lands asynchronously; wait for the run to settle.
	deadline := time.Now().Add(10 * time.Second)
	for doc.Done+doc.Failed < doc.Total {
		if time.Now().After(deadline) {
			t.Fatalf("run never settled: %+v", doc)
		}
		time.Sleep(10 * time.Millisecond)
		doc = getRunDoc(t, ts.URL+"/run/"+doc.ID)
	}
	if doc.Failed != 1 || doc.Done != 0 || doc.Complete {
		t.Fatalf("run after failure: done=%d failed=%d complete=%v, want 0/1/false", doc.Done, doc.Failed, doc.Complete)
	}
	if !doc.Jobs[0].Failed || doc.Jobs[0].Done {
		t.Errorf("job row after failure: %+v, want failed and not done", doc.Jobs[0])
	}
	if s.queue.IsDone(doc.Jobs[0].Key) {
		t.Error("failed job journaled a done marker — a restart would never retry it")
	}
	if n := s.reg.Counter("wbserve_job_failures_total").Value(); n < 1 {
		t.Errorf("wbserve_job_failures_total = %d, want >= 1", n)
	}

	// The synchronous path must not pretend: the waiter is released (done +
	// failed covers the run) and answers 500, since there is no stored result.
	resp2, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"bench":"li","n":100000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("sync request for a failing job: status %d, want 500", resp2.StatusCode)
	}
}

// A job whose store write failed still completes its runs — the measurement
// is valid and served — but gets NO done marker: the journal's invariant is
// "done = result durably in the store", so replay re-runs it after a
// restart instead of hanging on a marker for a result that was never kept.
func TestUnstoredResultCompletesWithoutDoneMarker(t *testing.T) {
	s, ts := testServerCfg(t, serverConfig{
		CacheSize: 4, MaxN: 5_000_000,
		testBackend: func(b dispatch.Backend) dispatch.Backend { return unstoredBackend{inner: b} },
	})

	resp, out := postRun(t, ts, `{"bench":"li","n":100000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync run with an unstorable result: status %d, want 200 (the measurement is in hand)", resp.StatusCode)
	}
	if out.Instructions == 0 {
		t.Error("empty measurement returned alongside a 200")
	}
	if n := s.reg.Counter("wbserve_store_put_failures_total").Value(); n != 1 {
		t.Errorf("wbserve_store_put_failures_total = %d, want 1", n)
	}
	if n := s.reg.Counter("wbserve_job_failures_total").Value(); n != 0 {
		t.Errorf("an unstored result was counted as a job failure (%d)", n)
	}
	runs := s.queue.Runs()
	if len(runs) != 1 || len(runs[0].Jobs) != 1 {
		t.Fatalf("queue holds %d runs, want the one submitted", len(runs))
	}
	if s.queue.IsDone(runs[0].Jobs[0].Key) {
		t.Error("unstored result journaled a done marker — restart recovery would trust a result that is not in the store")
	}
}
