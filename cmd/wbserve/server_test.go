package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/machconf"
	"repro/internal/sim"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000, Worker: true})
}

func testServerCfg(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, RunResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out RunResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, out
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var items []struct{ ID, Title string }
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, it := range items {
		ids[it.ID] = true
	}
	for _, want := range []string{"fig3", "fig13", "table7", "summary"} {
		if !ids[want] {
			t.Errorf("experiment list missing %q (%d listed)", want, len(items))
		}
	}
}

func TestRunEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postRun(t, ts, `{"bench":"li","n":100000,"depth":12,"retire_at":8,"hazard":"read-from-WB"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Bench != "li" || out.Cached {
		t.Errorf("unexpected identity: %+v", out)
	}
	if out.Instructions == 0 || out.Cycles < out.Instructions {
		t.Errorf("implausible measurement: instr %d cycles %d", out.Instructions, out.Cycles)
	}
	if out.CPI < 1 {
		t.Errorf("CPI %v < 1", out.CPI)
	}
	if _, ok := out.StallPct["total"]; !ok {
		t.Errorf("stall_pct missing total: %v", out.StallPct)
	}
	// read-from-WB eliminates load-hazard stalls (the paper's Figure 7).
	if out.StallPct["load-hazard"] != 0 {
		t.Errorf("read-from-WB produced load-hazard stalls: %v", out.StallPct)
	}
	if out.Config != "depth=12,width=4,retire=8,hazard=read-from-WB" {
		t.Errorf("config label = %q", out.Config)
	}
}

func TestRunCaching(t *testing.T) {
	s, ts := testServer(t)
	body := `{"bench":"compress","n":100000}`
	if _, out := postRun(t, ts, body); out.Cached {
		t.Fatal("first request reported cached")
	}
	_, out := postRun(t, ts, body)
	if !out.Cached {
		t.Fatal("identical second request missed the cache")
	}
	// Default-filling must canonicalise: an explicit baseline field still hits.
	if _, out := postRun(t, ts, `{"bench":"compress","n":100000,"depth":4}`); !out.Cached {
		t.Error("normalized-equal request missed the cache")
	}
	if s.reg.Counter("wbserve_cache_hits_total").Value() != 2 {
		t.Errorf("cache hits = %d, want 2", s.reg.Counter("wbserve_cache_hits_total").Value())
	}
	if s.reg.Counter("wbserve_cache_misses_total").Value() != 1 {
		t.Errorf("cache misses = %d, want 1", s.reg.Counter("wbserve_cache_misses_total").Value())
	}
}

func TestRunRejections(t *testing.T) {
	_, ts := testServer(t)
	for name, body := range map[string]string{
		"unknown bench":  `{"bench":"nosuch"}`,
		"missing bench":  `{}`,
		"over cap":       `{"bench":"li","n":999999999}`,
		"bad hazard":     `{"bench":"li","hazard":"explode"}`,
		"unknown field":  `{"bench":"li","bogus":1}`,
		"malformed json": `{`,
	} {
		resp, _ := postRun(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// A well-formed request describing a machine that fails sim validation is
// the client's configuration problem, not a malformed request: 422.
func TestRunInvalidConfigIs422(t *testing.T) {
	_, ts := testServer(t)
	for name, body := range map[string]string{
		"negative depth":    `{"bench":"li","depth":-1}`,
		"threshold too big": `{"bench":"li","depth":2,"issue_width":99}`,
	} {
		resp, _ := postRun(t, ts, body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", name, resp.StatusCode)
		}
	}
}

// /healthz must feed the same request/latency series as every other
// endpoint, so probes are visible in /metrics.
func TestHealthzInstrumented(t *testing.T) {
	s, ts := testServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := s.reg.Counter(`wbserve_requests_total{path="/healthz"}`).Value(); got != 3 {
		t.Errorf("healthz request counter = %d, want 3", got)
	}
	if got := s.reg.Histogram(`wbserve_request_microseconds{path="/healthz"}`).Count(); got != 3 {
		t.Errorf("healthz latency observations = %d, want 3", got)
	}
}

// TestJobEndpoint exercises the -worker surface end to end: a wire job in,
// a measurement out, matching what the local harness computes.
func TestJobEndpoint(t *testing.T) {
	s, ts := testServer(t)
	job := dispatch.Job{Bench: "li", Label: "base", Cfg: sim.Baseline(), N: 100_000}
	want, err := dispatch.Execute(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := postJob(t, ts, job)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("remote measurement differs:\n got %+v\nwant %+v", got, want)
	}
	if s.reg.Counter("dispatch_worker_jobs_total").Value() != 1 {
		t.Errorf("worker job counter = %d, want 1",
			s.reg.Counter("dispatch_worker_jobs_total").Value())
	}
	if s.reg.Counter(`wbserve_requests_total{path="/job"}`).Value() != 1 {
		t.Errorf("/job not instrumented")
	}
}

// burstRetire is a custom retirement policy with no built-in wire family:
// it waits for Burst buffered entries, then drains them as one burst.
type burstRetire struct{ Burst int }

func (p burstRetire) NextStart(occ int, headAlloc, lastStart, now uint64) (uint64, bool) {
	return now, occ >= p.Burst
}
func (p burstRetire) Name() string { return fmt.Sprintf("burst(%d)", p.Burst) }

var registerBurstOnce sync.Once

func registerBurst() {
	registerBurstOnce.Do(func() {
		machconf.RegisterRetirement(machconf.RetirementCodec{
			Kind: "burst",
			Encode: func(p core.RetirementPolicy) (any, bool) {
				b, ok := p.(burstRetire)
				if !ok {
					return nil, false
				}
				return map[string]int{"burst": b.Burst}, true
			},
			Decode: func(raw json.RawMessage) (core.RetirementPolicy, error) {
				var params struct {
					Burst int `json:"burst"`
				}
				if err := json.Unmarshal(raw, &params); err != nil {
					return nil, err
				}
				return burstRetire{Burst: params.Burst}, nil
			},
		})
	})
}

// A custom policy registered with the machconf registry round-trips
// through the real wbserve worker surface: the wire job carries the
// registered kind, the worker decodes and runs it, and the measurement
// matches local execution exactly.
func TestJobEndpointCustomPolicy(t *testing.T) {
	registerBurst()
	_, ts := testServer(t)
	cfg := sim.Baseline().WithDepth(8).WithRetire(burstRetire{Burst: 6})
	job := dispatch.Job{Bench: "compress", Label: "burst", Cfg: cfg, N: 100_000}
	want, err := dispatch.Execute(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := postJob(t, ts, job)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("remote custom-policy measurement differs:\n got %+v\nwant %+v", got, want)
	}
}

// POST /run accepts the machconf canonical form in the config field; a
// scalar request and a blob describing the same machine must share one
// cache entry (the key is the canonical hash, not the request shape).
func TestRunConfigBlob(t *testing.T) {
	_, ts := testServer(t)
	blob, err := machconf.Encode(sim.Baseline())
	if err != nil {
		t.Fatal(err)
	}

	// Scalar request first: all defaults, i.e. the baseline machine.
	if _, out := postRun(t, ts, `{"bench":"li","n":100000}`); out.Cached {
		t.Fatal("first request reported cached")
	}
	resp, out := postRun(t, ts, fmt.Sprintf(`{"bench":"li","n":100000,"config":%s}`, blob))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blob request: status %d", resp.StatusCode)
	}
	if !out.Cached {
		t.Error("equivalent blob request missed the scalar request's cache entry")
	}

	// A blob for a machine no scalar request can describe still runs, and
	// its label carries the canonical hash prefix.
	registerBurst()
	custom := sim.Baseline().WithRetire(burstRetire{Burst: 3})
	cblob, err := machconf.Encode(custom)
	if err != nil {
		t.Fatal(err)
	}
	resp, out = postRun(t, ts, fmt.Sprintf(`{"bench":"li","n":100000,"config":%s}`, cblob))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("custom-policy blob: status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(out.Config, "machconf:") {
		t.Errorf("blob request label = %q, want a machconf hash prefix", out.Config)
	}
}

func TestRunConfigBlobRejections(t *testing.T) {
	_, ts := testServer(t)
	blob, err := machconf.Encode(sim.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"blob plus machine field": {fmt.Sprintf(`{"bench":"li","depth":8,"config":%s}`, blob), http.StatusBadRequest},
		"unparsable blob":         {`{"bench":"li","config":{"v":99}}`, http.StatusBadRequest},
		"invalid machine":         {`{"bench":"li","config":` + strings.Replace(string(blob), `"wb_depth":4`, `"wb_depth":-1`, 1) + `}`, http.StatusUnprocessableEntity},
	} {
		resp, _ := postRun(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

// postJob round-trips one job through a Remote backend pointed at the
// test server, exactly how wbexp -workers reaches it.
func postJob(t *testing.T, ts *httptest.Server, job dispatch.Job) (dispatch.Measurement, error) {
	t.Helper()
	rem, err := dispatch.NewRemote([]string{ts.URL}, dispatch.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	return rem.Run(context.Background(), job)
}

// Without -worker the job endpoint must not exist.
func TestJobEndpointRequiresWorkerMode(t *testing.T) {
	_, ts := testServerCfg(t, serverConfig{CacheSize: 4, MaxN: 5_000_000})
	resp, err := http.Post(ts.URL+"/job", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/job without -worker: status %d, want 404", resp.StatusCode)
	}
}

// -cachesize semantics: the in-memory tier needs at least one entry; 0 and
// negatives are configuration errors, not silent cache-disable switches.
func TestCacheSizeValidation(t *testing.T) {
	for _, size := range []int{0, -1} {
		if _, err := newServer(serverConfig{CacheSize: size, MaxN: 1}); err == nil {
			t.Errorf("cachesize %d accepted, want an error", size)
		}
	}
	// A durable queue without a durable store cannot honour done markers.
	if _, err := newServer(serverConfig{CacheSize: 1, MaxN: 1, QueuePath: t.TempDir() + "/q.jsonl"}); err == nil {
		t.Error("queue without store accepted, want an error")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	postRun(t, ts, `{"bench":"li","n":100000}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`wbserve_requests_total{path="/run"} 1`,
		"wbserve_cache_misses_total 1",
		"sim_instructions_total",
		"sim_retirement_latency_cycles_count",
		`sim_stall_cycles_total{kind="L2-read-access"}`,
		"experiment_jobs_total 1",
		"wbserve_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestPprofAndHealth(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestConcurrentRuns exercises the serving path under the race detector:
// identical and distinct configurations racing through cache and registry.
func TestConcurrentRuns(t *testing.T) {
	_, ts := testServer(t)
	bodies := []string{
		`{"bench":"li","n":50000}`,
		`{"bench":"li","n":50000}`,
		`{"bench":"compress","n":50000}`,
		`{"bench":"espresso","n":50000,"depth":8}`,
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		for _, body := range bodies {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
			}(body)
		}
	}
	wg.Wait()
}
