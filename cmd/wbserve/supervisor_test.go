package main

import (
	"os/exec"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// sleepSpawn builds harmless long-lived subprocesses: `sleep` exits
// promptly on SIGTERM, which is exactly the drain behaviour the
// supervisor expects from a real worker.
func sleepSpawn(string) *exec.Cmd { return exec.Command("sleep", "60") }

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSupervisorScalesWithBacklog(t *testing.T) {
	var depth atomic.Int64
	reg := metrics.NewRegistry()
	sup := newSupervisor(supervisorConfig{
		Min:      1,
		Max:      3,
		Addrs:    []string{"http://127.0.0.1:1", "http://127.0.0.1:2", "http://127.0.0.1:3"},
		Spawn:    sleepSpawn,
		Depth:    func() int { return int(depth.Load()) },
		Interval: 10 * time.Millisecond,
		Metrics:  reg,
		Logf:     t.Logf,
	})
	defer sup.Stop(2 * time.Second)

	// Idle: the floor holds one worker up.
	waitFor(t, 2*time.Second, "min workers", func() bool { return sup.Workers() == 1 })

	// Backlog of 20 jobs: ceil(20/8) = 3, at the ceiling.
	depth.Store(20)
	waitFor(t, 2*time.Second, "scale-up to 3", func() bool { return sup.Workers() == 3 })
	if got := reg.Gauge("wbserve_supervisor_desired_workers").Value(); got != 3 {
		t.Errorf("desired gauge = %v, want 3", got)
	}

	// Backlog drains: scale back to the floor; the extra workers get
	// SIGTERM and their exits must not count as crashes.
	depth.Store(0)
	waitFor(t, 2*time.Second, "scale-down to 1", func() bool { return sup.Workers() == 1 })
	if got := reg.Counter("wbserve_supervisor_crashes_total").Value(); got != 0 {
		t.Errorf("drained workers counted as %d crashes", got)
	}
	if got := reg.Counter("wbserve_supervisor_spawns_total").Value(); got < 3 {
		t.Errorf("spawns_total = %d, want >= 3", got)
	}
}

func TestSupervisorRestartsCrashedWorker(t *testing.T) {
	reg := metrics.NewRegistry()
	sup := newSupervisor(supervisorConfig{
		Min:         1,
		Max:         1,
		Addrs:       []string{"http://127.0.0.1:1"},
		Spawn:       sleepSpawn,
		Depth:       func() int { return 0 },
		Interval:    10 * time.Millisecond,
		BaseBackoff: 20 * time.Millisecond,
		Metrics:     reg,
		Logf:        t.Logf,
	})
	defer sup.Stop(2 * time.Second)

	waitFor(t, 2*time.Second, "first worker", func() bool { return sup.Workers() == 1 })

	// Murder the worker out from under the supervisor: a crash, not a drain.
	sup.mu.Lock()
	proc := sup.slots[0].cmd.Process
	sup.mu.Unlock()
	if err := proc.Kill(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, "crash detected", func() bool {
		return reg.Counter("wbserve_supervisor_crashes_total").Value() == 1
	})
	waitFor(t, 2*time.Second, "restart after backoff", func() bool {
		return sup.Workers() == 1 && reg.Counter("wbserve_supervisor_restarts_total").Value() == 1
	})

	// The replacement is a different process.
	sup.mu.Lock()
	newPid := sup.slots[0].cmd.Process.Pid
	sup.mu.Unlock()
	if newPid == proc.Pid {
		t.Errorf("restarted worker reused pid %d", newPid)
	}
}

func TestSupervisorStopDrainsEverything(t *testing.T) {
	sup := newSupervisor(supervisorConfig{
		Min:      2,
		Max:      2,
		Addrs:    []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		Spawn:    sleepSpawn,
		Depth:    func() int { return 0 },
		Interval: 10 * time.Millisecond,
		Logf:     t.Logf,
	})
	waitFor(t, 2*time.Second, "both workers", func() bool { return sup.Workers() == 2 })

	sup.Stop(2 * time.Second)
	if n := sup.Workers(); n != 0 {
		t.Fatalf("%d workers survived Stop", n)
	}
	// Idempotent: a second Stop must not panic or hang.
	sup.Stop(time.Second)
}

func TestSupervisorBackoffGrowsAndCaps(t *testing.T) {
	sup := &supervisor{cfg: supervisorConfig{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
	}}
	cases := []struct {
		failures int
		want     time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second},
		{20, time.Second},
	}
	for _, c := range cases {
		if got := sup.backoff(c.failures); got != c.want {
			t.Errorf("backoff(%d) = %v, want %v", c.failures, got, c.want)
		}
	}
}

func TestSupervisorDesiredCountClamps(t *testing.T) {
	var depth int
	sup := &supervisor{cfg: supervisorConfig{
		Min:   1,
		Max:   4,
		Depth: func() int { return depth },
	}}
	cases := []struct{ depth, want int }{
		{0, 1},   // floor
		{1, 1},   // one job still needs one worker
		{8, 1},   // exactly one worker's worth
		{9, 2},   // spills into a second
		{32, 4},  // at the ceiling
		{999, 4}, // clamped
	}
	for _, c := range cases {
		depth = c.depth
		if got := sup.desiredCount(); got != c.want {
			t.Errorf("desiredCount(depth=%d) = %d, want %d", c.depth, got, c.want)
		}
	}
}
