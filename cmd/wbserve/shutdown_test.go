package main

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The graceful-shutdown contract: once draining starts, new work is
// refused with 503 and /healthz routes dispatchers away, but a request
// already executing runs to completion under http.Server.Shutdown.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	s, ts := testServer(t)

	// A deliberately heavy request to hold in flight across the drain.
	slow := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/run", "application/json",
			strings.NewReader(`{"bench":"li","n":5000000}`))
		if err != nil {
			slow <- nil
			return
		}
		resp.Body.Close()
		slow <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	s.ready.SetDraining()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/healthz while draining = %d, want 503", resp.StatusCode)
		}
	}
	if resp, _ := postRun(t, ts, `{"bench":"li"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/run while draining = %d, want 503", resp.StatusCode)
	}
	if resp, err := http.Post(ts.URL+"/job", "application/json", strings.NewReader(`{}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/job while draining = %d, want 503", resp.StatusCode)
		}
	}

	// Shutdown must wait for the in-flight run and return cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain cleanly: %v", err)
	}
	resp := <-slow
	if resp == nil {
		t.Fatal("in-flight request was killed by shutdown")
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", resp.StatusCode)
	}
}
