package main

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/experiment"
	"repro/internal/jobqueue"
)

// runID content-addresses a sweep: the SHA-256 of the tenant and the
// ordered result-store keys, truncated for URLs.  Resubmitting an identical
// sweep — after a client retry, a kill -9, a load-balancer replay —
// converges on the same run id, so the journal holds one run and GET
// /run/{id} answers for all of them.
func runID(tenant string, jobs []jobqueue.Job) string {
	h := sha256.New()
	h.Write([]byte(tenant))
	for _, j := range jobs {
		h.Write([]byte{'\n'})
		h.Write([]byte(j.Key))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// runHistory bounds the per-run replay buffer behind Last-Event-ID: a
// reconnecting client can resume across this many missed completions;
// further behind than that it gets a catch-up snapshot instead (GET
// /run/{id} remains the ledger either way).
const runHistory = 256

// runUpdate is one SSE progress datum: the Tracker's ETA/MIPS series for
// one run, advanced by one finished job.  It is the same series the
// terminal ProgressReporter renders, serialised.
type runUpdate struct {
	RunID string `json:"run_id"`
	// Seq numbers broadcast updates 1,2,3,… within one run and doubles as
	// the SSE event id, so a dropped client resumes by replaying
	// everything after its Last-Event-ID.  Catch-up snapshots carry the
	// seq of the last broadcast (0 before the first).
	Seq   uint64 `json:"seq"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Bench/Label/Key identify the job that advanced the run (empty on the
	// initial catch-up snapshot).
	Bench string `json:"bench,omitempty"`
	Label string `json:"label,omitempty"`
	Key   string `json:"key,omitempty"`
	// Instructions/Cycles are the finished job's measured counts.
	Instructions uint64 `json:"instructions,omitempty"`
	Cycles       uint64 `json:"cycles,omitempty"`
	ElapsedMS    int64  `json:"elapsed_ms"`
	EtaMS        int64  `json:"eta_ms"`
	MIPS         float64 `json:"mips"`
	Complete     bool    `json:"complete"`
	// Failed marks this update as a job *failure*: the job identified by
	// Bench/Label/Key errored instead of completing.  Failed jobs do not
	// count toward Done or Complete — they carry no done marker, so the
	// journal re-delivers them after a restart (or a resubmission retries
	// them immediately).  FailedJobs is the run's current failure count.
	Failed     bool `json:"failed,omitempty"`
	FailedJobs int  `json:"failed_jobs,omitempty"`
}

// runState is one registered sweep's live view: which keys are done, the
// ETA/MIPS tracker, the SSE subscribers, and a latch for synchronous
// waiters.
type runState struct {
	run jobqueue.Run

	mu       sync.Mutex
	done     map[string]bool
	failed   map[string]bool // keys whose last attempt errored (retryable)
	tracker  experiment.Tracker
	subs     map[chan runUpdate]bool
	finished chan struct{} // closed when every job is done or failed
	closed   bool
	seq      uint64      // id of the most recent broadcast update
	history  []runUpdate // last runHistory broadcasts, ascending Seq
}

func (st *runState) snapshotLocked(ev *experiment.ProgressEvent) runUpdate {
	u := runUpdate{
		RunID:      st.run.ID,
		Seq:        st.seq,
		Done:       len(st.done),
		Total:      len(st.run.Jobs),
		FailedJobs: len(st.failed),
		Complete:   len(st.done) == len(st.run.Jobs),
	}
	if ev != nil {
		s := st.tracker.Observe(*ev)
		u.Bench, u.Label, u.Instructions, u.Cycles = s.Bench, s.Label, s.Instructions, s.Cycles
		u.ElapsedMS = s.Elapsed.Milliseconds()
		u.EtaMS = s.ETA.Milliseconds()
		u.MIPS = s.MIPS
		st.seq++
		u.Seq = st.seq
		st.history = append(st.history, u)
		if len(st.history) > runHistory {
			st.history = append(st.history[:0:0], st.history[len(st.history)-runHistory:]...)
		}
	}
	return u
}

// failureLocked records one job failure and builds its broadcast update.
// The ETA tracker is not advanced — a failed job measured nothing — but the
// update still takes a sequence number so Last-Event-ID replay covers it.
func (st *runState) failureLocked(bench, label string) runUpdate {
	u := runUpdate{
		RunID:      st.run.ID,
		Done:       len(st.done),
		Total:      len(st.run.Jobs),
		FailedJobs: len(st.failed),
		Bench:      bench,
		Label:      label,
		Failed:     true,
	}
	st.seq++
	u.Seq = st.seq
	st.history = append(st.history, u)
	if len(st.history) > runHistory {
		st.history = append(st.history[:0:0], st.history[len(st.history)-runHistory:]...)
	}
	return u
}

// progress reports the run's current counts without advancing the tracker —
// the catch-up snapshot a freshly attached SSE client receives first.
func (st *runState) progress() runUpdate {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapshotLocked(nil)
}

// updatesSince returns the retained broadcasts with Seq > after, for
// Last-Event-ID replay.  The second result reports whether the history
// still reaches back to the client's position; false means the buffer was
// trimmed past it (or the process restarted, resetting seq) and the caller
// must resync with a fresh snapshot instead.
func (st *runState) updatesSince(after uint64) ([]runUpdate, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if after >= st.seq {
		// At or ahead of the newest broadcast: ahead only happens across a
		// process restart, where replay is impossible — resync.
		return nil, after == st.seq
	}
	if len(st.history) == 0 || st.history[0].Seq > after+1 {
		return nil, false
	}
	var out []runUpdate
	for _, u := range st.history {
		if u.Seq > after {
			out = append(out, u)
		}
	}
	return out, true
}

// subscribe attaches an SSE client; the returned cancel detaches it.
func (st *runState) subscribe() (<-chan runUpdate, func()) {
	ch := make(chan runUpdate, 16)
	st.mu.Lock()
	st.subs[ch] = true
	st.mu.Unlock()
	return ch, func() {
		st.mu.Lock()
		delete(st.subs, ch)
		st.mu.Unlock()
	}
}

// doneKeys reports which of the run's keys are complete and which are
// currently failed (retryable — a resubmission or a post-restart replay
// reruns them).
func (st *runState) doneKeys() (done, failed map[string]bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	done = make(map[string]bool, len(st.done))
	for k := range st.done {
		done[k] = true
	}
	failed = make(map[string]bool, len(st.failed))
	for k := range st.failed {
		failed[k] = true
	}
	return done, failed
}

// runRegistry indexes live runs by id and pending result-store key, fanning
// each completed job out to every run that contains it — the serving-layer
// face of queue deduplication: one execution retires the same key in every
// tenant's sweep at once.
type runRegistry struct {
	mu      sync.Mutex
	runs    map[string]*runState
	waiting map[string]map[*runState]bool // pending key → runs containing it
}

func newRunRegistry() *runRegistry {
	return &runRegistry{
		runs:    map[string]*runState{},
		waiting: map[string]map[*runState]bool{},
	}
}

// register installs a run (idempotently: an already-registered id returns
// the existing state).  isDone, when non-nil, seeds the done set — the
// result store's membership test, so store-answered jobs never wait.
func (rr *runRegistry) register(run jobqueue.Run, isDone func(key string) bool) *runState {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if st, ok := rr.runs[run.ID]; ok {
		return st
	}
	st := &runState{
		run:      run,
		done:     map[string]bool{},
		failed:   map[string]bool{},
		subs:     map[chan runUpdate]bool{},
		finished: make(chan struct{}),
	}
	for _, j := range run.Jobs {
		if isDone != nil && isDone(j.Key) {
			st.done[j.Key] = true
			continue
		}
		w := rr.waiting[j.Key]
		if w == nil {
			w = map[*runState]bool{}
			rr.waiting[j.Key] = w
		}
		w[st] = true
	}
	rr.runs[run.ID] = st
	if len(st.done) == len(run.Jobs) {
		st.closed = true
		close(st.finished)
	}
	return st
}

// get returns a registered run's state.
func (rr *runRegistry) get(id string) (*runState, bool) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	st, ok := rr.runs[id]
	return st, ok
}

// complete marks key done in every run waiting on it, advancing each run's
// tracker with the per-run Done/Total view and broadcasting to its SSE
// subscribers.  A subscriber that cannot keep up drops updates rather than
// stalling the dispatcher (SSE is a progress feed, not a ledger; GET
// /run/{id} is the ledger).
func (rr *runRegistry) complete(key string, ev experiment.ProgressEvent) {
	rr.mu.Lock()
	holders := rr.waiting[key]
	delete(rr.waiting, key)
	rr.mu.Unlock()
	for st := range holders {
		st.mu.Lock()
		if st.done[key] {
			st.mu.Unlock()
			continue
		}
		st.done[key] = true
		delete(st.failed, key) // a retry succeeded; the failure is history
		ev.Done, ev.Total = len(st.done), len(st.run.Jobs)
		u := st.snapshotLocked(&ev)
		for ch := range st.subs {
			select {
			case ch <- u:
			default:
			}
		}
		if u.Complete && !st.closed {
			st.closed = true
			close(st.finished)
		}
		st.mu.Unlock()
	}
}

// fail marks key failed in every run waiting on it.  Unlike complete, the
// key is NOT removed from the waiting index and NOT counted done: a failed
// job has no stored result and no done marker, so a resubmission (or the
// journal replay after a restart) reruns it, and a later success flows
// through complete and clears the failure.  Synchronous waiters are still
// released — once every job is either done or failed there is nothing left
// in flight to wait for, and the run document distinguishes the two.
func (rr *runRegistry) fail(key string, ev experiment.ProgressEvent) {
	rr.mu.Lock()
	holders := make([]*runState, 0, len(rr.waiting[key]))
	for st := range rr.waiting[key] {
		holders = append(holders, st)
	}
	rr.mu.Unlock()
	for _, st := range holders {
		st.mu.Lock()
		if st.done[key] || st.failed[key] {
			st.mu.Unlock()
			continue
		}
		st.failed[key] = true
		u := st.failureLocked(ev.Bench, ev.Label)
		for ch := range st.subs {
			select {
			case ch <- u:
			default:
			}
		}
		if len(st.done)+len(st.failed) == len(st.run.Jobs) && !st.closed {
			st.closed = true
			close(st.finished)
		}
		st.mu.Unlock()
	}
}
