// Command wbserve exposes the simulator as an HTTP service: submit a
// machine configuration and a benchmark as JSON, get the paper's
// measurement back as JSON.  It is the serving layer of the observability
// subsystem — results are cached in a bounded LRU keyed on the full
// (configuration, benchmark, instruction count) tuple, every request and
// simulated run feeds the /metrics registry, and the standard pprof
// endpoints are mounted for live profiling.
//
// With -worker the process additionally serves POST /job, the sweep-worker
// endpoint of internal/dispatch: a coordinator running
// `wbexp -workers host1,host2` shards a matrix sweep across a pool of
// such processes.  Jobs are deterministic, so workers are stateless and
// interchangeable — any worker (or a retry on a different worker) returns
// the identical measurement.  See docs/DISTRIBUTED.md for the operator
// guide.
//
// Usage:
//
//	wbserve                          # listen on :8047
//	wbserve -addr :9000 -cachesize 1024 -maxn 50000000
//	wbserve -worker -addr :8101      # also accept sweep jobs on POST /job
//
// Endpoints:
//
//	GET  /experiments   list the paper's experiment ids and titles
//	POST /run           run one (benchmark, configuration): JSON in, JSON out
//	POST /job           run one sweep job (wire format; -worker only)
//	GET  /metrics       Prometheus text exposition of the metrics registry
//	GET  /healthz       readiness probe: 200 while accepting work, 503 while
//	                    starting or draining (the dispatcher's re-probe target)
//	GET  /debug/pprof/  net/http/pprof profiles
//	GET  /debug/vars    expvar JSON (cmdline, memstats)
//
// Example:
//
//	curl -s localhost:8047/run -d '{"bench":"li","depth":12,"retire_at":8,"hazard":"read-from-WB"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", ":8047", "listen address")
		cacheSize = flag.Int("cachesize", 256, "bounded LRU result cache capacity (entries)")
		maxN      = flag.Uint64("maxn", 20_000_000, "largest per-request instruction count accepted")
		worker    = flag.Bool("worker", false, "serve POST /job so wbexp -workers can dispatch sweep jobs here")
		drain     = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	s := newServer(*cacheSize, *maxN, *worker)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	mode := ""
	if *worker {
		mode = ", worker mode"
	}
	fmt.Fprintf(os.Stderr, "wbserve: listening on %s (cache %d entries, maxn %d%s)\n",
		*addr, *cacheSize, *maxN, mode)

	// Graceful shutdown: the first SIGINT/SIGTERM flips the server to
	// draining — /healthz turns 503 so dispatchers route around us, new
	// /run and /job work is refused — then http.Server.Shutdown lets
	// in-flight requests finish under the drain deadline.  A second
	// signal kills the process the usual way (NotifyContext unregisters
	// after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	s.ready.SetDraining()
	fmt.Fprintf(os.Stderr, "wbserve: signal received, draining in-flight requests (up to %v)\n", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatalf("wbserve: drain deadline exceeded: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "wbserve: drained, exiting")
}
