// Command wbserve exposes the simulator as an HTTP service: submit a
// machine configuration and one or more benchmarks as JSON, get the
// paper's measurements back as JSON.  It is the serving layer of the sweep
// platform — results live in the shared content-addressed result store
// (bounded in-memory tier always, durable on-disk tier with -store), sweeps
// queue through a durable FIFO (-queue) drained by an in-process dispatcher
// pool, progress streams over Server-Sent Events, and every tenant is rate
// limited and quota'd by the X-WB-Tenant header.
//
// With -worker the process additionally serves POST /job, the sweep-worker
// endpoint of internal/dispatch: a coordinator running
// `wbexp -workers host1,host2` shards a matrix sweep across a pool of
// such processes.  Jobs are deterministic, so workers are stateless and
// interchangeable — any worker (or a retry on a different worker) returns
// the identical measurement.  See docs/DISTRIBUTED.md for the pool guide
// and docs/SERVING.md for the platform guide.
//
// Usage:
//
//	wbserve                                   # in-memory, listen on :8047
//	wbserve -store /var/lib/wb/results        # durable shared result store
//	wbserve -store /var/lib/wb/a,/var/lib/wb/b   # replicated store + scrubber
//	wbserve -store /var/lib/wb/results -queue /var/lib/wb/queue.jsonl
//	wbserve -tenants tenants.json -rate 10 -maxpending 256
//	wbserve -authkeys keys.json               # bearer-token auth + /admin surface
//	wbserve -worker -addr :8101               # also accept sweep jobs on POST /job
//	wbserve -supervise -minworkers 1 -maxworkers 4   # self-managed worker pool
//
// Endpoints (with -authkeys every surface except /healthz and /job demands
// a bearer token; run documents are readable only by their owning tenant or
// an admin — run ids are content-addressed and therefore derivable):
//
//	GET  /experiments      list the paper's experiment ids and titles
//	POST /run              run a (benchmark, configuration) sweep: JSON in,
//	                       JSON out; "async": true answers 202 with a run id
//	GET  /run/{id}         run document: job status plus results from the store
//	GET  /run/{id}/events  Server-Sent Events progress stream (ETA/MIPS series)
//	POST /job              run one sweep job (wire format; -worker only; never
//	                       token-gated — keep workers on loopback or a private net)
//	GET  /metrics          Prometheus text exposition of the metrics registry
//	GET  /healthz          readiness probe: 200 while accepting work, 503 while
//	                       starting or draining (the dispatcher's re-probe target)
//	GET  /debug/pprof/     net/http/pprof profiles
//	GET  /debug/vars       expvar JSON (cmdline, memstats)
//
// Admin endpoints (require -authkeys and a token whose tenant holds the
// admin bit; 401 without a token, 403 without the bit):
//
//	POST /admin/store/verify   synchronous integrity pass (scrub when replicated)
//	POST /admin/store/evict    {"config_hash": h}: drop one configuration's entries
//	POST /admin/store/prune    {"max_entries": n}: bound the disk tier
//	GET  /admin/store/status   tier sizes, per-replica stats, last scrub report
//	GET  /admin/queue/status   backlog depth, journal bytes, autoscale hint
//
// Example:
//
//	curl -s localhost:8047/run -d '{"bench":"li","depth":12,"retire_at":8,"hazard":"read-from-WB"}'
//	curl -s localhost:8047/run -d '{"benches":["li","compress"],"n":2000000,"async":true}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/tenant"
)

func main() {
	var (
		addr      = flag.String("addr", ":8047", "listen address")
		cacheSize = flag.Int("cachesize", 256, "in-memory result-store tier capacity in entries; must be >= 1 (0 is rejected: a zero-entry cache would silently re-simulate every request — bound work with -maxn instead)")
		maxN      = flag.Uint64("maxn", 20_000_000, "largest per-request instruction count accepted")
		worker    = flag.Bool("worker", false, "serve POST /job so wbexp -workers can dispatch sweep jobs here")
		storeDir  = flag.String("store", "", "durable content-addressed result-store directory, shared with wbexp/wbopt -store (empty: results live in memory only)")
		queueFile = flag.String("queue", "", "durable job-queue journal (JSONL); sweeps survive kill -9 and resume on restart; requires -store")
		workers   = flag.Int("dispatchers", 0, "simulation goroutines draining the job queue (0 = number of CPUs)")
		tenantsF  = flag.String("tenants", "", "per-tenant limits JSON file (see docs/SERVING.md); \"*\" overrides the defaults")
		rate      = flag.Float64("rate", 0, "default per-tenant sustained request rate in requests/second (0 = unlimited)")
		burst     = flag.Float64("burst", 0, "default per-tenant burst size (0 = same as -rate, minimum 1)")
		maxPend   = flag.Int("maxpending", 0, "default per-tenant cap on enqueued-but-unfinished simulations (0 = unlimited)")
		drain     = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
		authKeys  = flag.String("authkeys", "", "bearer-token keys JSON file (see docs/SERVING.md); enables authentication and the /admin surface")
		scrubEach = flag.Duration("scrubinterval", 5*time.Minute, "replicated-store background scrub interval (jittered; only meaningful with a comma-separated -store)")
		supervise = flag.Bool("supervise", false, "supervise local wbserve -worker subprocesses, scaling them to the queue backlog between -minworkers and -maxworkers")
		minWorker = flag.Int("minworkers", 0, "supervised worker floor (with -supervise)")
		maxWorker = flag.Int("maxworkers", 4, "supervised worker ceiling (with -supervise)")
		workPort  = flag.Int("workerport", 8200, "first port for supervised worker subprocesses; slots use workerport..workerport+maxworkers-1")
	)
	flag.Parse()

	overrides, err := tenant.LoadConfig(*tenantsF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wbserve: %v\n", err)
		os.Exit(2)
	}
	keyring, err := tenant.LoadKeyring(*authKeys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wbserve: %v\n", err)
		os.Exit(2)
	}
	var workerAddrs []string
	if *supervise {
		if *maxWorker < 1 || *minWorker < 0 || *minWorker > *maxWorker {
			fmt.Fprintf(os.Stderr, "wbserve: -supervise needs 0 <= minworkers <= maxworkers and maxworkers >= 1 (got %d..%d)\n", *minWorker, *maxWorker)
			os.Exit(2)
		}
		for i := 0; i < *maxWorker; i++ {
			workerAddrs = append(workerAddrs, fmt.Sprintf("http://127.0.0.1:%d", *workPort+i))
		}
	}
	s, err := newServer(serverConfig{
		CacheSize:       *cacheSize,
		MaxN:            *maxN,
		Worker:          *worker,
		StoreDir:        *storeDir,
		ScrubInterval:   *scrubEach,
		QueuePath:       *queueFile,
		Dispatchers:     *workers,
		TenantDefaults:  tenant.Limits{Rate: *rate, Burst: *burst, MaxPending: *maxPend},
		TenantOverrides: overrides,
		Keyring:         keyring,
		WorkerAddrs:     workerAddrs,
		Logf:            log.New(os.Stderr, "", log.LstdFlags).Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wbserve: %v\n", err)
		os.Exit(2)
	}
	var sup *supervisor
	if *supervise {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "wbserve: %v\n", err)
			os.Exit(2)
		}
		maxNStr := strconv.FormatUint(*maxN, 10)
		sup = newSupervisor(supervisorConfig{
			Min:   *minWorker,
			Max:   *maxWorker,
			Addrs: workerAddrs,
			Spawn: func(addr string) *exec.Cmd {
				port := strings.TrimPrefix(addr, "http://")
				cmd := exec.Command(exe, "-worker", "-addr", port, "-maxn", maxNStr)
				cmd.Stdout = os.Stderr
				cmd.Stderr = os.Stderr
				return cmd
			},
			Depth:   s.queue.Depth,
			Metrics: s.reg,
			Logf:    s.logf,
		})
		fmt.Fprintf(os.Stderr, "wbserve: supervising %d..%d workers on ports %d..%d\n",
			*minWorker, *maxWorker, *workPort, *workPort+*maxWorker-1)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	mode := ""
	if *worker {
		mode = ", worker mode"
	}
	durability := "memory-only"
	if *storeDir != "" {
		durability = "store " + *storeDir
		if *queueFile != "" {
			durability += ", queue " + *queueFile
		}
	}
	fmt.Fprintf(os.Stderr, "wbserve: listening on %s (cache %d entries, maxn %d, %s%s)\n",
		*addr, *cacheSize, *maxN, durability, mode)

	// Graceful shutdown: the first SIGINT/SIGTERM flips the server to
	// draining — /healthz turns 503 so dispatchers route around us, new
	// /run and /job work is refused — then http.Server.Shutdown lets
	// in-flight requests finish under the drain deadline, and finally the
	// dispatcher pool and queue journal close (jobs in flight at that point
	// carry no done marker and re-run on the next start).  A second signal
	// kills the process the usual way (NotifyContext unregisters after the
	// first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	s.ready.SetDraining()
	fmt.Fprintf(os.Stderr, "wbserve: signal received, draining in-flight requests (up to %v)\n", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatalf("wbserve: drain deadline exceeded: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if sup != nil {
		sup.Stop(*drain)
	}
	s.Close()
	fmt.Fprintln(os.Stderr, "wbserve: drained, exiting")
}
