// Command wbserve exposes the simulator as an HTTP service: submit a
// machine configuration and a benchmark as JSON, get the paper's
// measurement back as JSON.  It is the serving layer of the observability
// subsystem — results are cached in a bounded LRU keyed on the full
// (configuration, benchmark, instruction count) tuple, every request and
// simulated run feeds the /metrics registry, and the standard pprof
// endpoints are mounted for live profiling.
//
// With -worker the process additionally serves POST /job, the sweep-worker
// endpoint of internal/dispatch: a coordinator running
// `wbexp -workers host1,host2` shards a matrix sweep across a pool of
// such processes.  Jobs are deterministic, so workers are stateless and
// interchangeable — any worker (or a retry on a different worker) returns
// the identical measurement.  See docs/DISTRIBUTED.md for the operator
// guide.
//
// Usage:
//
//	wbserve                          # listen on :8047
//	wbserve -addr :9000 -cachesize 1024 -maxn 50000000
//	wbserve -worker -addr :8101      # also accept sweep jobs on POST /job
//
// Endpoints:
//
//	GET  /experiments   list the paper's experiment ids and titles
//	POST /run           run one (benchmark, configuration): JSON in, JSON out
//	POST /job           run one sweep job (wire format; -worker only)
//	GET  /metrics       Prometheus text exposition of the metrics registry
//	GET  /healthz       liveness probe (the dispatcher's re-probe target)
//	GET  /debug/pprof/  net/http/pprof profiles
//	GET  /debug/vars    expvar JSON (cmdline, memstats)
//
// Example:
//
//	curl -s localhost:8047/run -d '{"bench":"li","depth":12,"retire_at":8,"hazard":"read-from-WB"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", ":8047", "listen address")
		cacheSize = flag.Int("cachesize", 256, "bounded LRU result cache capacity (entries)")
		maxN      = flag.Uint64("maxn", 20_000_000, "largest per-request instruction count accepted")
		worker    = flag.Bool("worker", false, "serve POST /job so wbexp -workers can dispatch sweep jobs here")
	)
	flag.Parse()

	s := newServer(*cacheSize, *maxN, *worker)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	mode := ""
	if *worker {
		mode = ", worker mode"
	}
	fmt.Fprintf(os.Stderr, "wbserve: listening on %s (cache %d entries, maxn %d%s)\n",
		*addr, *cacheSize, *maxN, mode)
	log.Fatal(srv.ListenAndServe())
}
