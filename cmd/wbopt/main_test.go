package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadSpaceDefaultAndOverride(t *testing.T) {
	s, err := loadSpace("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Depths) == 0 {
		t.Fatal("default space has no depth axis")
	}

	s, err = loadSpace("", "l2lat=10")
	if err != nil {
		t.Fatal(err)
	}
	if s.Base == nil || s.Base.L2WriteLat != 10 {
		t.Fatalf("-base override not applied: %+v", s.Base)
	}

	if _, err := loadSpace("", "mystery=1"); err == nil {
		t.Error("bad -base spec accepted")
	}
	if _, err := loadSpace("/no/such/space.json", ""); err == nil {
		t.Error("missing space file accepted")
	}
}

func TestLoadSpaceFileWithBaseOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "space.json")
	if err := os.WriteFile(path, []byte(`{"depths": [2, 4], "base": "l2lat=8"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := loadSpace(path, "l2lat=12")
	if err != nil {
		t.Fatal(err)
	}
	// -base wins over the file's own base.
	if s.Base == nil || s.Base.L2WriteLat != 12 {
		t.Fatalf("base = %+v", s.Base)
	}
	if len(s.Depths) != 2 {
		t.Fatalf("depths = %v", s.Depths)
	}
}

func TestPickBenches(t *testing.T) {
	bs, err := pickBenches("li,fft")
	if err != nil || len(bs) != 2 || bs[0].Name != "li" || bs[1].Name != "fft" {
		t.Fatalf("pickBenches = %v, %v", bs, err)
	}
	if bs, err := pickBenches(""); err != nil || bs != nil {
		t.Fatalf("empty csv should mean the full suite (nil), got %v, %v", bs, err)
	}
	if _, err := pickBenches("li,nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
