// Command wbopt searches the write-buffer design space instead of sweeping
// it by hand: it enumerates a space of legal machines, spends a cycle-exact
// simulation budget according to a strategy, and reports the Pareto
// frontier of CPI overhead against buffer area — ending with a check that
// the search rediscovers the paper's headline conclusion (deep buffer,
// retire at about half depth, read-from-WB).
//
// Usage:
//
//	wbopt                                          # guided search of the paper's space
//	wbopt -strategy grid                           # exhaustive reference sweep
//	wbopt -space space.json -budget 200 -seed 7    # a custom space under a budget
//	wbopt -workers host1:8101,host2:8101           # fan out to wbserve -worker pools
//	wbopt -checkpoint opt.jsonl                    # kill it, rerun it, it resumes
//	wbopt -out frontier.json -stats-out bench.json # machine-readable artifacts
//
// The budget counts full-length (configuration × benchmark) simulations;
// the guided strategy screens twice that many candidates at quarter length
// first, so its default budget of 25% of the exhaustive grid typically
// lands within measurement noise of the grid optimum.  A fixed -seed makes
// the frontier JSON byte-reproducible, locally or through workers.
//
// See docs/EXPLORATION.md for the space-file format and strategy details.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/explore"
	"repro/internal/machconf"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	var (
		spacePath  = flag.String("space", "", "space JSON file (default: the paper's depth × retire × hazard space)")
		baseSpec   = flag.String("base", "", "base machine spec (machconf key=value string or @file.json); overrides the space file's base")
		strategy   = flag.String("strategy", "guided", "search strategy: guided, grid, random")
		budget     = flag.Float64("budget", 0, "cycle-exact budget in full-length (config × benchmark) simulations; 0 = grid: unlimited, guided/random: 25% of the grid")
		n          = flag.Uint64("n", 1_000_000, "dynamic instructions per full-length run")
		seed       = flag.Uint64("seed", 1, "search seed; fixed seed + space + budget = byte-identical frontier JSON")
		benchCSV   = flag.String("benchmarks", "", "comma-separated benchmark subset (default: the full suite)")
		top        = flag.Int("top", 10, "ranked configurations to print")
		out        = flag.String("out", "", "write the canonical result JSON (frontier, rankings) to this file")
		statsOut   = flag.String("stats-out", "", "write wall-clock search statistics (jobs/sec, sims skipped) to this JSON file")
		workersCSV = flag.String("workers", "", "comma-separated wbserve -worker addresses to dispatch simulations to")
		checkpoint = flag.String("checkpoint", "", "JSONL journal path; completed simulations are skipped when the search reruns")
		storeDir   = flag.String("store", "", "shared content-addressed result-store directory (same as wbserve/wbexp -store); simulations any process already paid for are never re-run")
		verify     = flag.Float64("verify", 0, "fraction (0..1] of remote simulations to re-execute locally; any divergence aborts the search")
		quiet      = flag.Bool("quiet", false, "suppress the live progress line on stderr")
	)
	flag.Parse()

	space, err := loadSpace(*spacePath, *baseSpec)
	if err != nil {
		fatalf("%v", err)
	}
	strat, ok := explore.ByName(*strategy)
	if !ok {
		fatalf("unknown strategy %q (want guided, grid, or random)", *strategy)
	}
	benches, err := pickBenches(*benchCSV)
	if err != nil {
		fatalf("%v", err)
	}

	reg := metrics.NewRegistry()
	backend, closeBackend, err := dispatch.BuildBackendOpts(dispatch.BuildOptions{
		Workers:        *workersCSV,
		Checkpoint:     *checkpoint,
		Store:          *storeDir,
		VerifyFraction: *verify,
		Metrics:        reg,
		Logf:           func(format string, args ...any) { fmt.Fprintf(os.Stderr, "wbopt: "+format+"\n", args...) },
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer closeBackend()

	env := explore.Env{
		Benches: benches,
		N:       *n,
		Budget:  *budget,
		Seed:    *seed,
		Backend: backend,
		Metrics: reg,
	}
	if !*quiet {
		env.Progress = experiment.ProgressReporter(os.Stderr, "wbopt/"+strat.Name())
	}

	// SIGINT/SIGTERM cancel the search context: dispatch stops promptly
	// (mid-backoff and mid-hedge included) and, with -checkpoint, the
	// journal holds every finished simulation for the rerun to resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := strat.Search(ctx, space, env)
	if err != nil {
		if ctx.Err() != nil && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "wbopt: interrupted; rerun with -checkpoint %s to resume\n", *checkpoint)
		}
		fatalf("%v", err)
	}
	wall := time.Since(start)

	printReport(res, *top)

	if *out != "" {
		blob, err := res.MarshalCanonical()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *statsOut != "" {
		if err := writeStats(*statsOut, res, wall); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *statsOut)
	}
}

// loadSpace resolves the search space: a space file, the built-in default,
// and an optional base-machine override on top of either.
func loadSpace(path, baseSpec string) (*explore.Space, error) {
	space := explore.Default()
	if path != "" {
		s, err := explore.LoadFile(path)
		if err != nil {
			return nil, err
		}
		space = s
	}
	if baseSpec != "" {
		base, err := machconf.ParseSpec(baseSpec)
		if err != nil {
			return nil, fmt.Errorf("-base: %w", err)
		}
		space.Base = &base
	}
	return space, nil
}

// pickBenches resolves the -benchmarks subset.
func pickBenches(csv string) ([]workload.Benchmark, error) {
	if csv == "" {
		return nil, nil
	}
	var out []workload.Benchmark
	for _, name := range strings.Split(csv, ",") {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		out = append(out, b)
	}
	return out, nil
}

// printReport renders the human-readable search summary: spend, ranking,
// frontier, and the paper-conclusion check.
func printReport(res *explore.Result, top int) {
	fmt.Printf("strategy %s  seed %d  space %d configurations  suite %d benchmarks  n %d\n",
		res.Strategy, res.Seed, res.SpaceSize, len(res.Suite), res.N)
	gridJobs := res.SpaceSize * len(res.Suite)
	fmt.Printf("budget %.0f full-length sims (grid: %d)  spent %.1f  runs %d  pruned %d\n\n",
		res.Budget, gridJobs, res.CostSpent, res.SimsRun, res.SimsSkipped)

	if top > len(res.Evaluated) {
		top = len(res.Evaluated)
	}
	fmt.Printf("top configurations (suite-mean write-buffer CPI overhead):\n")
	fmt.Printf("  %4s  %10s  %6s  %s\n", "rank", "CPI ovh", "cost", "configuration")
	for i := 0; i < top; i++ {
		e := res.Evaluated[i]
		fmt.Printf("  %4d  %10.5f  %6d  %s\n", i+1, e.CPIOverhead, e.Cost, e.Label)
	}

	fmt.Printf("\nPareto frontier (cost proxy vs CPI overhead):\n")
	for _, p := range res.Frontier {
		fmt.Printf("  cost %4d  CPI ovh %8.5f  %s\n", p.Cost, p.CPIOverhead, p.Label)
	}

	c := res.PaperCheck()
	fmt.Printf("\npaper check:\n")
	fmt.Printf("  read-from-WB on the frontier:   %s\n", yesno(c.FrontierHasReadFromWB))
	fmt.Printf("  best configuration:             %s (hazard %s)\n", c.BestLabel, c.BestHazard)
	if c.BestRetireRatio > 0 {
		fmt.Printf("  best retire/depth ratio:        %.2f (near half: %s)\n", c.BestRetireRatio, yesno(c.RetireNearHalf))
	}
	fmt.Printf("  headline conclusion rediscovered: %s\n", yesno(c.Rediscovered))
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// searchStats is the -stats-out artifact: wall-clock figures deliberately
// kept out of the deterministic result JSON.
type searchStats struct {
	Strategy    string  `json:"strategy"`
	SpaceSize   int     `json:"space_size"`
	Suite       int     `json:"suite"`
	N           uint64  `json:"n"`
	Budget      float64 `json:"budget"`
	SimsRun     int     `json:"sims_run"`
	SimsSkipped int     `json:"sims_skipped"`
	CostSpent   float64 `json:"cost_spent"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	Frontier    int     `json:"frontier_size"`
}

func writeStats(path string, res *explore.Result, wall time.Duration) error {
	s := searchStats{
		Strategy:    res.Strategy,
		SpaceSize:   res.SpaceSize,
		Suite:       len(res.Suite),
		N:           res.N,
		Budget:      res.Budget,
		SimsRun:     res.SimsRun,
		SimsSkipped: res.SimsSkipped,
		CostSpent:   res.CostSpent,
		WallSeconds: wall.Seconds(),
		Frontier:    len(res.Frontier),
	}
	if wall > 0 {
		s.JobsPerSec = float64(res.SimsRun) / wall.Seconds()
	}
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wbopt: "+format+"\n", args...)
	os.Exit(1)
}
