// wbbench measures raw simulator throughput over the full 17-benchmark
// suite and writes the result as JSON — the repository's `make bench-sim`
// target and the source of the committed BENCH_sim.json.
//
// Two execution paths are measured:
//
//   - fused: the production entry point (dispatch.ExecuteBench → batched
//     trace.Generator → Machine.StepBatch), the path every experiment,
//     explore search, and wbserve worker runs.
//   - legacy: the original per-reference path (trace.Stream.Next →
//     Machine.Step, one interface call per dynamic instruction), kept as
//     the differential-test oracle.
//
// The ratio between the two is the PR-6 hot-path speedup; the absolute
// fused number is the repository's throughput trajectory, tracked across
// PRs next to BENCH_explore.json (whose jobs/sec is bounded by it).  See
// docs/PERFORMANCE.md for how to read and regenerate the numbers.
//
// Usage:
//
//	wbbench [-n 1000000] [-mode both|fused|legacy] [-org fifo|ftl] [-backend flat|banked] [-out BENCH_sim.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchResult is one benchmark's throughput on one path.
type BenchResult struct {
	Bench string  `json:"bench"`
	MIPS  float64 `json:"mips"`
}

// PathResult aggregates one execution path over the suite.
type PathResult struct {
	AggregateMIPS float64       `json:"aggregate_mips"`
	WallSeconds   float64       `json:"wall_seconds"`
	Benches       []BenchResult `json:"benches"`
}

// Result is the BENCH_sim.json schema.  SeedAggregateMIPS is the aggregate
// throughput of the pre-PR-6 seed implementation, measured once on the
// reference machine and carried forward so every later PR can see the
// trajectory from the original per-reference loop.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Instructions  uint64 `json:"instructions_per_bench"`
	BenchCount    int    `json:"bench_count"`
	// Org names the buffer organization the machine ran with; empty means
	// fifo (the committed BENCH_sim.json shape, unchanged from before the
	// organization axis existed).
	Org string `json:"org,omitempty"`
	// Backend names the memory backend the machine drained into; empty
	// means flat (the committed BENCH_sim.json shape, unchanged from
	// before the backend axis existed).
	Backend           string      `json:"backend,omitempty"`
	SeedAggregateMIPS float64     `json:"seed_aggregate_mips"`
	Fused             *PathResult `json:"fused,omitempty"`
	Legacy            *PathResult `json:"legacy,omitempty"`
	SpeedupVsLegacy   float64     `json:"speedup_vs_legacy,omitempty"`
	SpeedupVsSeed     float64     `json:"speedup_vs_seed,omitempty"`
}

// defaultSeedMIPS is the measured aggregate throughput of the seed
// implementation (per-reference Stream.Next + Step, pre-ring-buffer core,
// pre-flattened policy dispatch) over this same suite at n=2e6 on the
// reference machine — the best of three interleaved seed-vs-new runs,
// recorded by PR 6 before the rewrite landed (docs/PERFORMANCE.md
// describes the protocol).
var defaultSeedMIPS = flag.Float64("seed-mips", 28.33,
	"recorded pre-PR-6 seed aggregate MIPS (reference machine); used for speedup_vs_seed")

func main() {
	n := flag.Uint64("n", 1_000_000, "dynamic instructions per benchmark (first quarter is warm-up)")
	mode := flag.String("mode", "both", "paths to measure: both, fused, or legacy")
	org := flag.String("org", "fifo",
		"buffer organization to measure: fifo, or ftl (reference shape numbuffers=2, sectorbits=1)")
	backendFlag := flag.String("backend", "flat",
		"memory backend to measure: flat, or banked (reference shape banks=4, rowmiss=18)")
	out := flag.String("out", "", "write JSON result to this file (default stdout only)")
	quiet := flag.Bool("quiet", false, "suppress the per-benchmark progress lines")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement to this file")
	repeat := flag.Int("repeat", 1,
		"measure each path this many times and report the best run (scheduler noise is one-sided)")
	baseline := flag.String("baseline", "", "committed BENCH_sim.json to gate against (CI bench smoke)")
	maxRegress := flag.Float64("max-regress", 0.20,
		"with -baseline: fail if fused aggregate MIPS drops more than this fraction below it")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// The measured machine: the paper baseline, optionally re-organized.
	// The ftl reference shape (2 buffers, 1 sector bit) exercises striping,
	// masked coalescing, and the fullest-buffer victim walk on both paths,
	// so a throughput cliff in the organization layer shows up here even
	// though the committed BENCH_sim.json gates the fifo.
	cfg := sim.Baseline()
	switch *org {
	case "fifo":
	case "ftl":
		cfg = cfg.WithOrg(core.FTLOrg{NumBuffers: 2, SectorBits: 1})
	default:
		fmt.Fprintf(os.Stderr, "wbbench: unknown -org %q (want fifo or ftl)\n", *org)
		os.Exit(1)
	}
	// The banked reference shape exercises the bank-selection, busy-until,
	// and row-buffer paths on every retirement, so a throughput cliff in
	// the backend layer shows up here even though the committed
	// BENCH_sim.json gates the flat backend.
	switch *backendFlag {
	case "flat":
	case "banked":
		cfg = cfg.WithBackend(backend.BankedSpec{Banks: 4, RowMiss: 18})
	default:
		fmt.Fprintf(os.Stderr, "wbbench: unknown -backend %q (want flat or banked)\n", *backendFlag)
		os.Exit(1)
	}

	benches := workload.All()
	res := Result{
		SchemaVersion:     1,
		Instructions:      *n,
		BenchCount:        len(benches),
		SeedAggregateMIPS: *defaultSeedMIPS,
	}
	if *org != "fifo" {
		res.Org = *org
	}
	if *backendFlag != "flat" {
		res.Backend = *backendFlag
	}

	if *mode == "both" || *mode == "fused" {
		res.Fused = measureBest(benches, cfg, *n, true, *quiet, *repeat)
	}
	if *mode == "both" || *mode == "legacy" {
		res.Legacy = measureBest(benches, cfg, *n, false, *quiet, *repeat)
	}
	if res.Fused != nil {
		if res.Legacy != nil && res.Legacy.AggregateMIPS > 0 {
			res.SpeedupVsLegacy = res.Fused.AggregateMIPS / res.Legacy.AggregateMIPS
		}
		if res.SeedAggregateMIPS > 0 {
			res.SpeedupVsSeed = res.Fused.AggregateMIPS / res.SeedAggregateMIPS
		}
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbbench:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(blob)

	if *baseline != "" {
		if err := gate(*baseline, res, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(2)
		}
	}
}

// gate is the CI bench-smoke check: the committed BENCH_sim.json must
// parse, and the fresh fused aggregate must be within maxRegress of it.
// The committed number was measured on the reference machine with a much
// longer run, so the gate catches structural regressions (an accidental
// de-batching, a reintroduced per-step allocation), not single-digit
// percent drift.
func gate(path string, fresh Result, maxRegress float64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Result
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("baseline %s does not parse: %w", path, err)
	}
	if base.SchemaVersion != fresh.SchemaVersion {
		return fmt.Errorf("baseline schema v%d, tool writes v%d — regenerate %s",
			base.SchemaVersion, fresh.SchemaVersion, path)
	}
	if base.Org != fresh.Org {
		return fmt.Errorf("baseline %s measured org %q, this run measured %q — gate like against like",
			path, orgName(base.Org), orgName(fresh.Org))
	}
	if base.Backend != fresh.Backend {
		return fmt.Errorf("baseline %s measured backend %q, this run measured %q — gate like against like",
			path, backendName(base.Backend), backendName(fresh.Backend))
	}
	if base.Fused == nil || base.Fused.AggregateMIPS <= 0 {
		return fmt.Errorf("baseline %s has no fused aggregate", path)
	}
	if fresh.Fused == nil {
		return fmt.Errorf("gate needs a fused measurement (run with -mode fused or both)")
	}
	floor := base.Fused.AggregateMIPS * (1 - maxRegress)
	if fresh.Fused.AggregateMIPS < floor {
		return fmt.Errorf("fused aggregate %.2f MIPS below gate %.2f (baseline %.2f, max regress %.0f%%)",
			fresh.Fused.AggregateMIPS, floor, base.Fused.AggregateMIPS, maxRegress*100)
	}
	fmt.Fprintf(os.Stderr, "wbbench: gate ok: %.2f MIPS vs baseline %.2f (floor %.2f)\n",
		fresh.Fused.AggregateMIPS, base.Fused.AggregateMIPS, floor)
	return nil
}

// orgName renders a Result.Org for error messages (empty means fifo).
func orgName(org string) string {
	if org == "" {
		return "fifo"
	}
	return org
}

// backendName renders a Result.Backend for error messages (empty means
// flat).
func backendName(be string) string {
	if be == "" {
		return "flat"
	}
	return be
}

// measureBest is measure repeated, keeping the run with the best
// aggregate.  Interference from a shared host only ever slows a run down,
// so the best of a few repetitions is the least-biased estimate of the
// code's actual speed; one repetition is fine on a quiet machine.
func measureBest(benches []workload.Benchmark, cfg sim.Config, n uint64, fused, quiet bool, repeat int) *PathResult {
	best := measure(benches, cfg, n, fused, quiet)
	for i := 1; i < repeat; i++ {
		if pr := measure(benches, cfg, n, fused, quiet); pr.AggregateMIPS > best.AggregateMIPS {
			best = pr
		}
	}
	return best
}

// measure runs every benchmark on the baseline machine through one path
// and returns per-bench and aggregate MIPS.  Aggregate is total simulated
// instructions over total wall time, so slow benchmarks weigh in
// proportionally — the number a sweep's wall clock actually tracks.
func measure(benches []workload.Benchmark, cfg sim.Config, n uint64, fused bool, quiet bool) *PathResult {
	pr := &PathResult{Benches: make([]BenchResult, 0, len(benches))}
	var totalInstr uint64
	var totalWall time.Duration
	for _, b := range benches {
		start := time.Now()
		if fused {
			if _, err := dispatch.ExecuteBench(b, "bench", cfg, n, nil); err != nil {
				fmt.Fprintf(os.Stderr, "wbbench: %s: %v\n", b.Name, err)
				os.Exit(1)
			}
		} else {
			m := sim.MustNew(cfg)
			legacyWarmRun(m, b.Stream(n), n)
		}
		wall := time.Since(start)
		mips := float64(n) / wall.Seconds() / 1e6
		pr.Benches = append(pr.Benches, BenchResult{Bench: b.Name, MIPS: round2(mips)})
		totalInstr += n
		totalWall += wall
		if !quiet {
			path := "legacy"
			if fused {
				path = "fused"
			}
			fmt.Fprintf(os.Stderr, "%-12s %-6s %8.2f MIPS\n", b.Name, path, mips)
		}
	}
	pr.WallSeconds = totalWall.Seconds()
	pr.AggregateMIPS = round2(float64(totalInstr) / totalWall.Seconds() / 1e6)
	return pr
}

// legacyWarmRun is the seed implementation's job shape: per-reference
// Stream consumption through Machine.Step with the standard quarter-stream
// warm-up split.  It deliberately avoids the batched generator machinery
// so the legacy number keeps measuring the original loop.
func legacyWarmRun(m *sim.Machine, s trace.Stream, n uint64) {
	for i := uint64(0); i < n/4; i++ {
		r, ok := s.Next()
		if !ok {
			break
		}
		m.Step(r)
	}
	m.ResetStats()
	m.Run(s)
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
