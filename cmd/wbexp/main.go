// Command wbexp regenerates the paper's tables and figures.
//
// Usage:
//
//	wbexp -list
//	wbexp -exp fig3            # one experiment
//	wbexp -exp fig6 -plot      # with a stacked-bar rendition
//	wbexp -all -n 2000000      # everything, 2M instructions per run
//
// Sweeps can run on a pool of remote workers and/or journal their
// progress for resumption (see docs/DISTRIBUTED.md):
//
//	wbexp -exp fig5 -workers host1:8101,host2:8101   # shard across wbserve -worker processes
//	wbexp -all -checkpoint sweep.jsonl               # kill it, rerun it, it resumes
//	wbexp -all -workers host1:8101 -verify 0.05      # spot-check 5% of remote results locally
//	wbexp -all -store /var/lib/wb/results            # share paid-for results with wbserve/wbopt
//
// Beyond the registered paper items, -config sweeps caller-supplied
// machines: each entry — a machconf JSON file (wbsim -dump-config writes
// one; -dump-config here prints the baseline) or a machconf key=value
// spec (machconf.ParseSpec's vocabulary, including the backend keys
// backend=, banks=, rowhit=, rowmiss=, fencecost=) — becomes one
// configuration column.  Entries are comma-separated; use semicolons
// when a spec itself needs commas:
//
//	wbexp -dump-config > base.json       # edit copies of this
//	wbexp -config base.json,deep.json
//	wbexp -config 'base.json;depth=8,banks=8,rowmiss=18'
//
// Each figure experiment prints one row per benchmark with the total
// write-buffer stall percentage and its (L2-read-access / buffer-full /
// load-hazard) split, one column per configuration — the textual analogue
// of the paper's stacked-bar charts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/machconf"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/svgplot"
	"repro/internal/textplot"
)

func main() {
	var (
		expID      = flag.String("exp", "", "experiment id (fig3..fig13, table4..table7, abl-*)")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		n          = flag.Uint64("n", 1_000_000, "dynamic instructions per benchmark run")
		plot       = flag.Bool("plot", false, "also render figure experiments as stacked bars")
		svg        = flag.String("svg", "", "directory to write one SVG figure per configuration column")
		quiet      = flag.Bool("quiet", false, "suppress the live progress line on stderr")
		workersCSV = flag.String("workers", "", "comma-separated wbserve -worker addresses to dispatch sweep jobs to")
		checkpoint = flag.String("checkpoint", "", "JSONL journal path; completed jobs are skipped when the sweep reruns")
		storeDir   = flag.String("store", "", "shared content-addressed result-store directory (same as wbserve/wbopt -store); jobs any process already paid for are never re-simulated")
		verify     = flag.Float64("verify", 0, "fraction (0..1] of remote jobs to re-execute locally; any divergence aborts the sweep")
		configCSV  = flag.String("config", "", "comma-separated machconf JSON files; sweeps them as one custom experiment")
		dumpConfig = flag.Bool("dump-config", false, "print the baseline machine's canonical machconf JSON and exit")
	)
	flag.Parse()
	if *svg != "" {
		if err := os.MkdirAll(*svg, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "wbexp: %v\n", err)
			os.Exit(1)
		}
	}

	backend, closeBackend, err := dispatch.BuildBackendOpts(dispatch.BuildOptions{
		Workers:        *workersCSV,
		Checkpoint:     *checkpoint,
		Store:          *storeDir,
		VerifyFraction: *verify,
		Logf:           func(format string, args ...any) { fmt.Fprintf(os.Stderr, "wbexp: "+format+"\n", args...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wbexp: %v\n", err)
		os.Exit(1)
	}
	defer closeBackend()

	switch {
	case *list:
		for _, e := range experiment.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
	case *dumpConfig:
		blob, err := machconf.Encode(sim.Baseline())
		if err != nil {
			fmt.Fprintf(os.Stderr, "wbexp: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(blob))
	case *configCSV != "":
		specs, err := loadSpecs(*configCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wbexp: %v\n", err)
			os.Exit(1)
		}
		e := experiment.CustomSweep(specs)
		runOne(e, *n, *plot, *svg, backend, progressFor(*quiet, e.ID))
	case *all:
		all := experiment.All()
		for i, e := range all {
			runOne(e, *n, *plot, *svg, backend, progressFor(*quiet, fmt.Sprintf("[%2d/%2d] %-8s", i+1, len(all), e.ID)))
		}
	case *expID != "":
		e, ok := experiment.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "wbexp: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		runOne(e, *n, *plot, *svg, backend, progressFor(*quiet, e.ID))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// loadSpecs turns each -config entry into a configuration column through
// machconf.ParseSpec, so a bad entry fails before any simulation starts.
// An entry is either a machconf JSON file path or a key=value spec
// (detected by '=' or a leading '@'); entries are comma-separated unless
// the string contains a semicolon, which then separates entries so a
// spec may itself use commas.  A file's column label is its base name, a
// spec's the spec itself; the canonical hash disambiguates collisions.
func loadSpecs(csv string) ([]experiment.ConfigSpec, error) {
	sep := ","
	if strings.Contains(csv, ";") {
		sep = ";"
	}
	var specs []experiment.ConfigSpec
	for _, entry := range strings.Split(csv, sep) {
		label := entry
		spec := entry
		if !strings.Contains(entry, "=") && !strings.HasPrefix(entry, "@") {
			spec = "@" + entry
			label = strings.TrimSuffix(filepath.Base(entry), filepath.Ext(entry))
		}
		cfg, err := machconf.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		specs = append(specs, experiment.ConfigSpec{Label: label, Cfg: cfg})
	}
	return specs, nil
}

// progressFor builds the per-experiment live progress callback, or nil
// under -quiet.  The line goes to stderr so report output stays pipeable.
func progressFor(quiet bool, name string) func(experiment.ProgressEvent) {
	if quiet {
		return nil
	}
	return experiment.ProgressReporter(os.Stderr, name)
}

func runOne(e experiment.Experiment, n uint64, plot bool, svgDir string, backend dispatch.Backend, progress func(experiment.ProgressEvent)) {
	// A distributed sweep can fail operationally (worker pool exhausted);
	// the harness surfaces that as a typed panic because the experiment
	// registry's Run functions have no error channel.  Turn it back into
	// a clean exit instead of a stack trace.
	defer func() {
		if p := recover(); p != nil {
			if be, ok := p.(*experiment.BackendError); ok {
				fmt.Fprintf(os.Stderr, "wbexp: %s: %v\n", e.ID, be)
				os.Exit(1)
			}
			panic(p)
		}
	}()
	rep := e.Run(experiment.Options{Instructions: n, Progress: progress, Backend: backend})
	if _, err := rep.WriteTo(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wbexp: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	figureLike := strings.HasPrefix(e.ID, "fig") || e.ID == "summary"
	if plot && figureLike {
		renderPlot(rep)
	}
	if svgDir != "" && figureLike {
		if err := writeSVGs(rep, svgDir); err != nil {
			fmt.Fprintf(os.Stderr, "wbexp: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeSVGs renders one SVG per configuration column of a figure report.
func writeSVGs(rep *experiment.Report, dir string) error {
	for col := 1; col < len(rep.Columns); col++ {
		chart := &svgplot.Chart{
			Title:  fmt.Sprintf("%s [%s]", rep.ID, rep.Columns[col]),
			XLabel: "stall cycles, % of total time",
		}
		for _, row := range rep.Rows {
			r, f, l, ok := parseCell(row[col])
			if !ok {
				continue
			}
			chart.Bars = append(chart.Bars, svgplot.Bar{
				Label: row[0],
				Segments: []svgplot.Segment{
					{Value: r, Label: stats.L2ReadAccess.String(), Color: "#2b2b2b"},
					{Value: f, Label: stats.BufferFull.String(), Color: "#9b9b9b"},
					{Value: l, Label: stats.LoadHazard.String(), Color: "#e3e3e3"},
				},
			})
		}
		if len(chart.Bars) == 0 {
			continue
		}
		name := fmt.Sprintf("%s-%s.svg", rep.ID, sanitize(rep.Columns[col]))
		fh, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := chart.Render(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
	}
	return nil
}

// sanitize maps a configuration label to a safe file-name fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// renderPlot turns the last configuration column of a figure report into a
// stacked-bar chart.  Cells look like "5.32 (0.41/4.02/0.89)".
func renderPlot(rep *experiment.Report) {
	for col := 1; col < len(rep.Columns); col++ {
		chart := &textplot.Chart{
			Title:  fmt.Sprintf("%s [%s]", rep.ID, rep.Columns[col]),
			Legend: "R=" + stats.L2ReadAccess.String() + " F=" + stats.BufferFull.String() + " L=" + stats.LoadHazard.String(),
		}
		for _, row := range rep.Rows {
			r, f, l, ok := parseCell(row[col])
			if !ok {
				continue
			}
			chart.Bars = append(chart.Bars, textplot.Bar{
				Label: row[0],
				Segments: []textplot.Segment{
					{Value: r, Glyph: 'R'},
					{Value: f, Glyph: 'F'},
					{Value: l, Glyph: 'L'},
				},
			})
		}
		if len(chart.Bars) > 0 {
			if err := chart.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "wbexp: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}

func parseCell(cell string) (r, f, l float64, ok bool) {
	open := strings.IndexByte(cell, '(')
	closing := strings.IndexByte(cell, ')')
	if open < 0 || closing < open {
		return 0, 0, 0, false
	}
	parts := strings.Split(cell[open+1:closing], "/")
	if len(parts) != 3 {
		return 0, 0, 0, false
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return 0, 0, 0, false
		}
		vals[i] = v
	}
	return vals[0], vals[1], vals[2], true
}
