package main

import "testing"

func TestParseCell(t *testing.T) {
	r, f, l, ok := parseCell(" 5.32 (0.41/4.02/0.89)")
	if !ok {
		t.Fatal("well-formed cell rejected")
	}
	if r != 0.41 || f != 4.02 || l != 0.89 {
		t.Errorf("parsed (%v,%v,%v)", r, f, l)
	}
}

func TestParseCellRejectsGarbage(t *testing.T) {
	for _, cell := range []string{
		"",
		"5.32",
		"5.32 (0.41/4.02)",
		"5.32 (a/b/c)",
		") 5.32 (",
	} {
		if _, _, _, ok := parseCell(cell); ok {
			t.Errorf("cell %q unexpectedly parsed", cell)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"1M-L2,mm=25":   "1M-L2_mm_25",
		"retire-at-8":   "retire-at-8",
		"wcache 8/α":    "wcache_8__",
		"flush-full":    "flush-full",
		"4x32B":         "4x32B",
		"2.5-something": "2.5-something",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
